#include "kernels/dense.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "ir/scalar_ops.h"

namespace riot {
namespace {

std::vector<double> Buf(int64_t rows, int64_t cols, double fill = 0.0) {
  return std::vector<double>(static_cast<size_t>(rows * cols), fill);
}

TEST(DenseViewTest, ColumnMajorIndexing) {
  auto b = Buf(2, 3);
  DenseView v{b.data(), 2, 3};
  v.At(1, 2) = 42.0;
  EXPECT_EQ(b[2 * 2 + 1], 42.0);  // col 2 * rows 2 + row 1
  EXPECT_EQ(v.elems(), 6);
}

TEST(DenseKernelTest, AddAndSub) {
  auto a = Buf(2, 2), b = Buf(2, 2), c = Buf(2, 2);
  DenseView va{a.data(), 2, 2}, vb{b.data(), 2, 2}, vc{c.data(), 2, 2};
  for (int i = 0; i < 4; ++i) {
    a[static_cast<size_t>(i)] = i;
    b[static_cast<size_t>(i)] = 10 * i;
  }
  BlockAdd(va, vb, &vc);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(c[static_cast<size_t>(i)], 11 * i);
  BlockSub(vb, va, &vc);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(c[static_cast<size_t>(i)], 9 * i);
}

TEST(DenseKernelTest, GemmKnownProduct) {
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50], column-major storage.
  std::vector<double> a = {1, 3, 2, 4};
  std::vector<double> b = {5, 7, 6, 8};
  auto c = Buf(2, 2);
  DenseView va{a.data(), 2, 2}, vb{b.data(), 2, 2}, vc{c.data(), 2, 2};
  BlockGemm(va, false, vb, false, &vc, /*accumulate=*/false);
  EXPECT_EQ(vc.At(0, 0), 19);
  EXPECT_EQ(vc.At(0, 1), 22);
  EXPECT_EQ(vc.At(1, 0), 43);
  EXPECT_EQ(vc.At(1, 1), 50);
}

TEST(DenseKernelTest, GemmAccumulates) {
  std::vector<double> a = {1, 0, 0, 1};  // identity
  std::vector<double> b = {1, 2, 3, 4};
  auto c = Buf(2, 2, /*fill=*/100.0);
  DenseView va{a.data(), 2, 2}, vb{b.data(), 2, 2}, vc{c.data(), 2, 2};
  BlockGemm(va, false, vb, false, &vc, /*accumulate=*/true);
  EXPECT_EQ(vc.At(0, 0), 101);
  EXPECT_EQ(vc.At(1, 1), 104);
}

TEST(DenseKernelTest, GemmTransposeFlagsAgreeWithManual) {
  const int64_t m = 3, k = 4, n = 2;
  auto a = Buf(m, k);
  auto b = Buf(k, n);
  DenseView va{a.data(), m, k}, vb{b.data(), k, n};
  BlockFillRandom(&va, 1);
  BlockFillRandom(&vb, 2);
  // Reference C = A * B.
  auto cref = Buf(m, n);
  DenseView vcref{cref.data(), m, n};
  BlockGemm(va, false, vb, false, &vcref, false);
  // A^T stored explicitly, then C = (A^T)^T * B must match.
  auto at = Buf(k, m);
  DenseView vat{at.data(), k, m};
  for (int64_t r = 0; r < m; ++r)
    for (int64_t c = 0; c < k; ++c) vat.At(c, r) = va.At(r, c);
  auto c1 = Buf(m, n);
  DenseView vc1{c1.data(), m, n};
  BlockGemm(vat, true, vb, false, &vc1, false);
  EXPECT_LE(BlockMaxAbsDiff(vcref, vc1), 1e-12);
  // B^T stored explicitly, then C = A * (B^T)^T must match.
  auto bt = Buf(n, k);
  DenseView vbt{bt.data(), n, k};
  for (int64_t r = 0; r < k; ++r)
    for (int64_t c = 0; c < n; ++c) vbt.At(c, r) = vb.At(r, c);
  auto c2 = Buf(m, n);
  DenseView vc2{c2.data(), m, n};
  BlockGemm(va, false, vbt, true, &vc2, false);
  EXPECT_LE(BlockMaxAbsDiff(vcref, vc2), 1e-12);
}

TEST(DenseKernelTest, GemmScalarMatchesBlocked) {
  const int64_t m = 5, k = 7, n = 3;
  auto a = Buf(m, k), b = Buf(k, n), c1 = Buf(m, n), c2 = Buf(m, n);
  DenseView va{a.data(), m, k}, vb{b.data(), k, n};
  DenseView vc1{c1.data(), m, n}, vc2{c2.data(), m, n};
  BlockFillRandom(&va, 11);
  BlockFillRandom(&vb, 12);
  BlockGemm(va, false, vb, false, &vc1, false);
  BlockGemmScalar(va, false, vb, false, &vc2, false);
  EXPECT_LE(BlockMaxAbsDiff(vc1, vc2), 1e-12);
}

TEST(DenseKernelTest, GemmAlphaScaling) {
  std::vector<double> a = {1, 0, 0, 1};
  std::vector<double> b = {1, 2, 3, 4};
  auto c = Buf(2, 2);
  DenseView va{a.data(), 2, 2}, vb{b.data(), 2, 2}, vc{c.data(), 2, 2};
  BlockGemm(va, false, vb, false, &vc, false, /*alpha=*/-2.0);
  EXPECT_EQ(vc.At(0, 0), -2);
  EXPECT_EQ(vc.At(1, 1), -8);
}

TEST(DenseKernelTest, InverseRoundTrip) {
  const int64_t n = 8;
  auto a = Buf(n, n);
  DenseView va{a.data(), n, n};
  BlockFillRandom(&va, 5);
  for (int64_t i = 0; i < n; ++i) va.At(i, i) += 10.0;  // well-conditioned
  auto inv = Buf(n, n), prod = Buf(n, n);
  DenseView vinv{inv.data(), n, n}, vprod{prod.data(), n, n};
  ASSERT_TRUE(BlockInverse(va, &vinv).ok());
  BlockGemm(va, false, vinv, false, &vprod, false);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      EXPECT_NEAR(vprod.At(i, j), i == j ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(DenseKernelTest, InverseSingularFails) {
  auto a = Buf(2, 2, 1.0);  // all ones: singular
  auto out = Buf(2, 2);
  DenseView va{a.data(), 2, 2}, vout{out.data(), 2, 2};
  EXPECT_FALSE(BlockInverse(va, &vout).ok());
}

TEST(DenseKernelTest, InversePivotsCorrectly) {
  // Zero on the diagonal forces a row swap.
  std::vector<double> a = {0, 1, 1, 0};  // [[0,1],[1,0]] col-major
  auto inv = Buf(2, 2);
  DenseView va{a.data(), 2, 2}, vinv{inv.data(), 2, 2};
  ASSERT_TRUE(BlockInverse(va, &vinv).ok());
  EXPECT_NEAR(vinv.At(0, 1), 1.0, 1e-12);
  EXPECT_NEAR(vinv.At(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(vinv.At(0, 0), 0.0, 1e-12);
}

TEST(DenseKernelTest, SumSquares) {
  std::vector<double> v = {3, 4};
  DenseView dv{v.data(), 2, 1};
  EXPECT_DOUBLE_EQ(BlockSumSquares(dv), 25.0);
}

TEST(DenseKernelTest, ColumnSumSquares) {
  // Columns (1,2) and (3,4): sums 5 and 25.
  std::vector<double> v = {1, 2, 3, 4};
  DenseView dv{v.data(), 2, 2};
  double acc[2] = {100.0, 200.0};
  BlockColumnSumSquares(dv, acc);
  EXPECT_DOUBLE_EQ(acc[0], 105.0);
  EXPECT_DOUBLE_EQ(acc[1], 225.0);
}

TEST(DenseKernelTest, FillRandomDeterministicAndBounded) {
  auto a = Buf(4, 4), b = Buf(4, 4);
  DenseView va{a.data(), 4, 4}, vb{b.data(), 4, 4};
  BlockFillRandom(&va, 123);
  BlockFillRandom(&vb, 123);
  EXPECT_EQ(a, b);
  BlockFillRandom(&vb, 124);
  EXPECT_NE(a, b);
  for (double x : a) {
    EXPECT_GE(x, -1.0);
    EXPECT_LT(x, 1.0);
  }
}

// Property sweep over shapes: (A B)^T == B^T A^T.
class GemmPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmPropertyTest, TransposeOfProduct) {
  auto [mi, ki, ni] = GetParam();
  int64_t m = mi, k = ki, n = ni;
  auto a = Buf(m, k), b = Buf(k, n);
  DenseView va{a.data(), m, k}, vb{b.data(), k, n};
  BlockFillRandom(&va, static_cast<uint64_t>(m * 100 + k));
  BlockFillRandom(&vb, static_cast<uint64_t>(k * 100 + n));
  auto ab = Buf(m, n);
  DenseView vab{ab.data(), m, n};
  BlockGemm(va, false, vb, false, &vab, false);
  // B^T A^T via transpose flags on the original buffers: result (n x m).
  auto btat = Buf(n, m);
  DenseView vbtat{btat.data(), n, m};
  BlockGemm(vb, true, va, true, &vbtat, false);
  for (int64_t r = 0; r < m; ++r) {
    for (int64_t c = 0; c < n; ++c) {
      EXPECT_NEAR(vab.At(r, c), vbtat.At(c, r), 1e-10);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmPropertyTest,
    ::testing::Combine(::testing::Values(1, 3, 8), ::testing::Values(1, 5),
                       ::testing::Values(2, 7)));

// Fill with small integers: every product and partial sum below is an exact
// integer well inside 2^53, so the packed kernel must match the naive
// reference BIT-exactly no matter how packing reassociates the sums.
void FillInts(DenseView* v, int64_t salt) {
  for (int64_t c = 0; c < v->cols; ++c) {
    for (int64_t r = 0; r < v->rows; ++r) {
      v->At(r, c) = static_cast<double>((r * 7 + c * 13 + salt) % 33 - 16);
    }
  }
}

// Exhaustive {trans_a, trans_b} x {accumulate} x {alpha} over ragged shapes
// (1 x n, n x 1, primes, multi-register-tile, multi-kc-chunk), packed
// BlockGemm vs the pre-packing BlockGemmNaive reference.
class GemmFlagMatrixTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmFlagMatrixTest, PackedMatchesNaiveBitExactOnIntegers) {
  auto [mi, ki, ni] = GetParam();
  const int64_t m = mi, k = ki, n = ni;
  for (bool ta : {false, true}) {
    for (bool tb : {false, true}) {
      // Operand buffers sized for the chosen op() orientation.
      auto a = Buf(ta ? k : m, ta ? m : k);
      auto b = Buf(tb ? n : k, tb ? k : n);
      DenseView va{a.data(), ta ? k : m, ta ? m : k};
      DenseView vb{b.data(), tb ? n : k, tb ? k : n};
      FillInts(&va, 3);
      FillInts(&vb, 5);
      for (bool acc : {false, true}) {
        // 0.5 is a power of two: exact scaling of exact-integer sums.
        for (double alpha : {1.0, -2.0, 0.5, 0.0}) {
          auto c1 = Buf(m, n), c2 = Buf(m, n);
          DenseView vc1{c1.data(), m, n}, vc2{c2.data(), m, n};
          if (acc) {
            FillInts(&vc1, 9);
            FillInts(&vc2, 9);
          }
          BlockGemm(va, ta, vb, tb, &vc1, acc, alpha);
          BlockGemmNaive(va, ta, vb, tb, &vc2, acc, alpha);
          ASSERT_EQ(c1, c2) << "m=" << m << " k=" << k << " n=" << n
                            << " ta=" << ta << " tb=" << tb << " acc=" << acc
                            << " alpha=" << alpha;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RaggedShapes, GemmFlagMatrixTest,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(1, 5, 9),
                      std::make_tuple(9, 5, 1), std::make_tuple(4, 4, 4),
                      std::make_tuple(13, 17, 11), std::make_tuple(31, 8, 6),
                      // m spans multiple mc strips, k spans two kc chunks.
                      std::make_tuple(131, 300, 23)));

TEST(DenseKernelTest, GemmRunToRunDeterministicOnGeneralDoubles) {
  // Packing fixes the summation order (kc chunks ascending, elements
  // ascending within a chunk), so two runs over irrational-ish data must be
  // bitwise identical.
  const int64_t m = 67, k = 300, n = 19;
  auto a = Buf(m, k), b = Buf(k, n), c1 = Buf(m, n), c2 = Buf(m, n);
  DenseView va{a.data(), m, k}, vb{b.data(), k, n};
  DenseView vc1{c1.data(), m, n}, vc2{c2.data(), m, n};
  BlockFillRandom(&va, 77);
  BlockFillRandom(&vb, 78);
  BlockGemm(va, false, vb, false, &vc1, false, 1.0 / 3.0);
  BlockGemm(va, false, vb, false, &vc2, false, 1.0 / 3.0);
  ASSERT_EQ(c1, c2);
}

TEST(DenseKernelTest, GemmTransposedAgainstExplicitTransposeLarge) {
  // Accuracy guard for the transpose-absorbing pack on a shape that
  // exercises edge tiles in both dimensions.
  const int64_t m = 61, k = 37, n = 29;
  auto a = Buf(k, m);  // holds A^T
  auto b = Buf(n, k);  // holds B^T
  DenseView vat{a.data(), k, m}, vbt{b.data(), n, k};
  BlockFillRandom(&vat, 21);
  BlockFillRandom(&vbt, 22);
  // Materialize A and B explicitly.
  auto ax = Buf(m, k), bx = Buf(k, n);
  DenseView vax{ax.data(), m, k}, vbx{bx.data(), k, n};
  for (int64_t r = 0; r < m; ++r)
    for (int64_t c = 0; c < k; ++c) vax.At(r, c) = vat.At(c, r);
  for (int64_t r = 0; r < k; ++r)
    for (int64_t c = 0; c < n; ++c) vbx.At(r, c) = vbt.At(c, r);
  auto cref = Buf(m, n), cflag = Buf(m, n);
  DenseView vref{cref.data(), m, n}, vflag{cflag.data(), m, n};
  BlockGemm(vax, false, vbx, false, &vref, false);
  BlockGemm(vat, true, vbt, true, &vflag, false);
  // Same packed summation order either way: bitwise equal, not just close.
  ASSERT_EQ(cref, cflag);
}

TEST(DenseKernelTest, FusedEvalBitMatchesComposedKernels) {
  // Tape for relu(2 * (x + y) - y) zip-max y: the fused single pass must be
  // bitwise equal to chaining the standalone kernels through temporaries —
  // one IEEE op per tape entry, same order, no contraction.
  const int64_t rows = 37, cols = 5;  // odd count exercises the scalar tail
  auto x = Buf(rows, cols), y = Buf(rows, cols);
  DenseView vx{x.data(), rows, cols}, vy{y.data(), rows, cols};
  BlockFillRandom(&vx, 7);
  BlockFillRandom(&vy, 8);

  ScalarMapFn relu = ScalarFnById(kScalarRelu).map;
  ScalarZipFn vmax = ScalarFnById(kScalarMax).zip;
  std::vector<FusedOp> tape(7);
  tape[0].code = FusedOp::Code::kLoad;
  tape[0].a = 0;  // x
  tape[1].code = FusedOp::Code::kLoad;
  tape[1].a = 1;  // y
  tape[2].code = FusedOp::Code::kAdd;
  tape[2].a = 0;
  tape[2].b = 1;
  tape[3].code = FusedOp::Code::kScale;
  tape[3].a = 2;
  tape[3].alpha = 2.0;
  tape[4].code = FusedOp::Code::kSub;
  tape[4].a = 3;
  tape[4].b = 1;
  tape[5].code = FusedOp::Code::kMap;
  tape[5].a = 4;
  tape[5].map_fn = relu;
  tape[6].code = FusedOp::Code::kZip;
  tape[6].a = 5;
  tape[6].b = 1;
  tape[6].zip_fn = vmax;

  auto fused = Buf(rows, cols);
  const double* inputs[2] = {x.data(), y.data()};
  BlockFusedEval(tape.data(), static_cast<int>(tape.size()), inputs,
                 fused.data(), rows * cols);

  auto t1 = Buf(rows, cols), t2 = Buf(rows, cols);
  DenseView v1{t1.data(), rows, cols}, v2{t2.data(), rows, cols};
  BlockAdd(vx, vy, &v1);
  BlockScale(v1, 2.0, &v2);
  BlockSub(v2, vy, &v1);
  BlockMap(relu, v1, &v2);
  BlockZip(vmax, v2, vy, &v1);
  ASSERT_EQ(fused, t1);  // bitwise, element for element
}

TEST(DenseKernelTest, FusedEvalSingleLoadCopies) {
  // Degenerate one-op tape: plain copy through the strip-mined path.
  const int64_t n = kFusedStripElems * 3 + 1;
  std::vector<double> x(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) x[static_cast<size_t>(i)] = 0.5 * i;
  std::vector<double> out(static_cast<size_t>(n), -1.0);
  FusedOp load;
  load.code = FusedOp::Code::kLoad;
  load.a = 0;
  const double* inputs[1] = {x.data()};
  BlockFusedEval(&load, 1, inputs, out.data(), n);
  EXPECT_EQ(out, x);
}

TEST(DenseKernelTest, MapAndZipApplyScalarFns) {
  auto a = Buf(2, 2), b = Buf(2, 2), c = Buf(2, 2);
  DenseView va{a.data(), 2, 2}, vb{b.data(), 2, 2}, vc{c.data(), 2, 2};
  for (int i = 0; i < 4; ++i) {
    a[static_cast<size_t>(i)] = i - 2;  // -2, -1, 0, 1
    b[static_cast<size_t>(i)] = -i;
  }
  BlockMap(ScalarFnById(kScalarAbs).map, va, &vc);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(c[static_cast<size_t>(i)], std::abs(i - 2));
  }
  BlockZip(ScalarFnById(kScalarMin).zip, va, vb, &vc);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(c[static_cast<size_t>(i)], std::min(i - 2, -i));
  }
}

TEST(DenseKernelTest, SumSquaresDeterministicAndMatchesColumns) {
  const int64_t rows = 103, cols = 7;
  auto x = Buf(rows, cols);
  DenseView vx{x.data(), rows, cols};
  BlockFillRandom(&vx, 99);
  const double s1 = BlockSumSquares(vx);
  const double s2 = BlockSumSquares(vx);
  ASSERT_EQ(s1, s2);
  // Whole-block result is the exact sum of the per-column kernel results
  // (same lanes, same combine tree per column).
  std::vector<double> acc(static_cast<size_t>(cols), 0.0);
  BlockColumnSumSquares(vx, acc.data());
  double total = 0.0;
  for (double v : acc) total += v;
  ASSERT_EQ(s1, total);
}

}  // namespace
}  // namespace riot
