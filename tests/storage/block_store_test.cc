#include "storage/block_store.h"

#include <gtest/gtest.h>

#include <vector>

namespace riot {
namespace {

class BlockStoreTest : public ::testing::TestWithParam<StorageFormat> {
 protected:
  Result<std::unique_ptr<BlockStore>> Open(Env* env, const std::string& path,
                                           int64_t block_bytes,
                                           int64_t num_blocks) {
    return OpenBlockStore(env, path, GetParam(), block_bytes, num_blocks);
  }
};

TEST_P(BlockStoreTest, WriteReadRoundTrip) {
  auto env = NewMemEnv();
  auto store = Open(env.get(), "/a", 256, 10);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  std::vector<uint8_t> out(256), in(256);
  for (int64_t b = 0; b < 10; ++b) {
    for (size_t i = 0; i < out.size(); ++i) {
      out[i] = static_cast<uint8_t>(b * 31 + i);
    }
    ASSERT_TRUE((*store)->WriteBlock(b, out.data()).ok());
    ASSERT_TRUE((*store)->ReadBlock(b, in.data()).ok());
    EXPECT_EQ(in, out);
  }
}

TEST_P(BlockStoreTest, OverwriteReplacesContent) {
  auto env = NewMemEnv();
  auto store = Open(env.get(), "/a", 64, 4);
  std::vector<uint8_t> v1(64, 0xAA), v2(64, 0x55), in(64);
  ASSERT_TRUE((*store)->WriteBlock(2, v1.data()).ok());
  ASSERT_TRUE((*store)->WriteBlock(2, v2.data()).ok());
  ASSERT_TRUE((*store)->ReadBlock(2, in.data()).ok());
  EXPECT_EQ(in, v2);
}

TEST_P(BlockStoreTest, OutOfOrderWrites) {
  auto env = NewMemEnv();
  auto store = Open(env.get(), "/a", 64, 100);
  std::vector<uint8_t> buf(64), in(64);
  // Write in a scattered order (exercises LAB-tree insertion paths).
  std::vector<int64_t> order = {57, 3, 99, 0, 42, 17, 58, 1, 98, 50};
  for (int64_t b : order) {
    std::fill(buf.begin(), buf.end(), static_cast<uint8_t>(b));
    ASSERT_TRUE((*store)->WriteBlock(b, buf.data()).ok());
  }
  for (int64_t b : order) {
    ASSERT_TRUE((*store)->ReadBlock(b, in.data()).ok());
    EXPECT_EQ(in[0], static_cast<uint8_t>(b));
    EXPECT_TRUE((*store)->HasBlock(b));
  }
}

TEST_P(BlockStoreTest, PersistenceAcrossReopen) {
  auto env = NewMemEnv();
  std::vector<uint8_t> buf(128, 0x3C), in(128);
  {
    auto store = Open(env.get(), "/p", 128, 8);
    ASSERT_TRUE((*store)->WriteBlock(5, buf.data()).ok());
    ASSERT_TRUE((*store)->Flush().ok());
  }
  {
    auto store = Open(env.get(), "/p", 128, 8);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->ReadBlock(5, in.data()).ok());
    EXPECT_EQ(in, buf);
  }
}

INSTANTIATE_TEST_SUITE_P(Formats, BlockStoreTest,
                         ::testing::Values(StorageFormat::kDaf,
                                           StorageFormat::kLabTree),
                         [](const auto& info) {
                           return info.param == StorageFormat::kDaf
                                      ? "Daf"
                                      : "LabTree";
                         });

TEST(DafTest, IndexOutOfRangeRejected) {
  auto env = NewMemEnv();
  auto store = OpenDaf(env.get(), "/d", 64, 4);
  std::vector<uint8_t> buf(64);
  EXPECT_FALSE((*store)->WriteBlock(4, buf.data()).ok());
  EXPECT_FALSE((*store)->ReadBlock(-1, buf.data()).ok());
}

TEST(LabTreeTest, MissingBlockIsNotFound) {
  auto env = NewMemEnv();
  auto store = OpenLabTree(env.get(), "/t", 64);
  std::vector<uint8_t> buf(64);
  auto st = (*store)->ReadBlock(3, buf.data());
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_FALSE((*store)->HasBlock(3));
}

TEST(LabTreeTest, ManyKeysForceSplits) {
  // > 255 keys forces at least one leaf split and an internal root.
  auto env = NewMemEnv();
  auto store = OpenLabTree(env.get(), "/t", 16);
  std::vector<uint8_t> buf(16), in(16);
  const int64_t n = 600;
  for (int64_t b = 0; b < n; ++b) {
    std::fill(buf.begin(), buf.end(), static_cast<uint8_t>(b % 251));
    ASSERT_TRUE((*store)->WriteBlock(b * 7 % n, buf.data()).ok())
        << "write " << b;
  }
  for (int64_t b = 0; b < n; ++b) {
    ASSERT_TRUE((*store)->ReadBlock(b, in.data()).ok()) << "read " << b;
  }
  ASSERT_TRUE((*store)->Flush().ok());
}

TEST(FormatEquivalenceTest, DafAndLabTreeSeeIdenticalData) {
  // Paper Section 6: LAB-tree and DAF "work virtually identically for dense
  // matrices" — same content in, same content out.
  auto env = NewMemEnv();
  auto daf = OpenDaf(env.get(), "/daf", 512, 32);
  auto lab = OpenLabTree(env.get(), "/lab", 512);
  std::vector<uint8_t> buf(512), a(512), b(512);
  for (int64_t blk = 0; blk < 32; ++blk) {
    for (size_t i = 0; i < buf.size(); ++i) {
      buf[i] = static_cast<uint8_t>((blk * 131 + i * 17) % 256);
    }
    ASSERT_TRUE((*daf)->WriteBlock(blk, buf.data()).ok());
    ASSERT_TRUE((*lab)->WriteBlock(blk, buf.data()).ok());
  }
  for (int64_t blk = 0; blk < 32; ++blk) {
    ASSERT_TRUE((*daf)->ReadBlock(blk, a.data()).ok());
    ASSERT_TRUE((*lab)->ReadBlock(blk, b.data()).ok());
    EXPECT_EQ(a, b);
  }
}

}  // namespace
}  // namespace riot
