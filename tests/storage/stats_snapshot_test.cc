// BufferPool::Snapshot(): counters and frame-state aggregates captured
// under ONE lock acquisition. Reading stats() and used_bytes() /
// PinnedFrames() as separate calls can interleave with IoPool
// write-behind callbacks and concurrent fetches, observing counters
// mid-update relative to frame state; Snapshot() must always return a
// view in which the pool's invariants hold. This test hammers the pool
// from reader, dirtier, and session-style threads while the main thread
// snapshots continuously — it is a TSan target (CI sanitizer matrix).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "storage/block_store.h"
#include "storage/buffer_pool.h"
#include "storage/env.h"
#include "storage/io_pool.h"

namespace riot {
namespace {

constexpr int64_t kBlock = 256;
constexpr int64_t kBlocks = 64;

class StatsSnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv();
    auto s = OpenDaf(env_.get(), "/s", kBlock, kBlocks);
    ASSERT_TRUE(s.ok());
    store_ = std::move(s).ValueOrDie();
    std::vector<uint8_t> buf(kBlock, 0);
    for (int64_t b = 0; b < kBlocks; ++b) {
      ASSERT_TRUE(store_->WriteBlock(b, buf.data()).ok());
    }
  }

  std::unique_ptr<Env> env_;
  std::unique_ptr<BlockStore> store_;
};

TEST_F(StatsSnapshotTest, InvariantsHoldUnderConcurrentTraffic) {
  IoPool io(2);
  BufferPool pool(8 * kBlock);
  pool.SetWriteBehind(&io);

  std::atomic<bool> stop{false};

  // Reader threads: fetch/unpin a rotating window (hits, misses,
  // evictions).
  auto reader = [&](int seed) {
    uint64_t x = static_cast<uint64_t>(seed) * 2654435761u + 1;
    while (!stop.load()) {
      x = x * 6364136223846793005ull + 1442695040888963407ull;
      int64_t b = static_cast<int64_t>(x >> 33) % kBlocks;
      auto f = pool.Fetch(0, b, kBlock, store_.get(), /*load=*/true);
      if (f.ok()) pool.Unpin(*f);
    }
  };
  // Dirtier thread: creates dirty frames so evictions exercise the async
  // write-behind path (counters updated from IoPool worker callbacks).
  auto dirtier = [&] {
    int64_t b = 0;
    while (!stop.load()) {
      auto f = pool.Fetch(0, b % kBlocks, kBlock, store_.get(),
                          /*load=*/false);
      if (f.ok()) {
        (*f)->dirty = true;
        pool.Unpin(*f);
      }
      ++b;
    }
  };
  // Session-style thread: budgeted, coalescing fetches against a second
  // array id (the multi-tenant fetch path).
  PoolAccount account;
  account.budget_bytes = 4 * kBlock;
  auto tenant = [&] {
    int64_t b = 0;
    while (!stop.load()) {
      bool resident = false;
      auto f = pool.Fetch(1, b % kBlocks, kBlock, store_.get(),
                          /*load=*/false, &resident, &account,
                          /*coalesce_loads=*/true);
      if (f.ok()) {
        if (!resident) {
          Status st;
          {
            // Store implementations are not thread-safe: serialize the
            // manual load against the write-behind workers' writes.
            auto serial = io.store_mutex(store_.get());
            std::lock_guard<std::mutex> g(*serial);
            st = store_->ReadBlock(b % kBlocks, (*f)->data.data());
          }
          if (st.ok()) {
            pool.MarkLoaded(*f);
          } else {
            pool.Discard(*f);
            ++b;
            continue;
          }
        }
        pool.Unpin(*f);
      }
      ++b;
    }
  };

  std::vector<std::thread> threads;
  threads.emplace_back(reader, 1);
  threads.emplace_back(reader, 2);
  threads.emplace_back(dirtier);
  threads.emplace_back(tenant);

  // Continuous snapshots: every view must be internally consistent. Run
  // for a fixed window (not a fixed count) and yield between views so the
  // worker threads actually interleave on small hosts.
  BufferPoolSnapshot prev = pool.Snapshot();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(400);
  while (std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
    BufferPoolSnapshot s = pool.Snapshot();
    ASSERT_GE(s.required_bytes, 0);
    ASSERT_LE(s.required_bytes, s.used_bytes);
    ASSERT_LE(s.used_bytes, pool.cap_bytes());
    ASSERT_GE(s.pinned_frames, 0);
    ASSERT_GE(s.writeback_inflight_bytes, 0);
    ASSERT_GE(s.pending_writebacks, 0);
    // Counters are monotonic between consecutive consistent views.
    ASSERT_GE(s.stats.hits, prev.stats.hits);
    ASSERT_GE(s.stats.misses, prev.stats.misses);
    ASSERT_GE(s.stats.evictions, prev.stats.evictions);
    ASSERT_GE(s.stats.dirty_writebacks, prev.stats.dirty_writebacks);
    ASSERT_GE(s.stats.async_writebacks, prev.stats.async_writebacks);
    ASSERT_GE(s.stats.coalesced_loads, prev.stats.coalesced_loads);
    // Write-behind accounting: async spills never outnumber spills.
    ASSERT_LE(s.stats.async_writebacks, s.stats.dirty_writebacks);
    // Every eviction had an insertion: misses + prefetch issues bound it.
    ASSERT_LE(s.stats.evictions,
              s.stats.misses + s.stats.prefetch_issued);
    prev = s;
  }
  stop.store(true);
  for (auto& t : threads) t.join();

  // Quiesce: land the write-behinds and check the drained view.
  ASSERT_TRUE(pool.DrainWritebacks().ok());
  pool.SetWriteBehind(nullptr);
  BufferPoolSnapshot end = pool.Snapshot();
  EXPECT_EQ(end.pinned_frames, 0);
  EXPECT_EQ(end.required_bytes, 0);
  EXPECT_EQ(end.writeback_inflight_bytes, 0);
  EXPECT_EQ(end.pending_writebacks, 0);
  // The tenant account drained with its pins.
  EXPECT_EQ(account.charged_bytes.load(), 0);
  EXPECT_LE(account.peak_charged_bytes.load(), account.budget_bytes);
}

}  // namespace
}  // namespace riot
