// Replacement-policy semantics through the BufferPool: LRU must reproduce
// the historical single-list behavior exactly (victims in last-touch order
// among evictable frames, pinned/retained frames transparent), Clock must
// respect pins/retention and give referenced frames a second chance, and
// ScheduleOpt must evict by farthest-next-use under a bound plan, merge
// several bound plans' futures through normalized per-plan clocks, and
// degrade to LRU order without any.
#include "storage/replacement.h"

#include <gtest/gtest.h>

#include "storage/block_store.h"
#include "storage/buffer_pool.h"
#include "storage/env.h"

namespace riot {
namespace {

class ReplacementTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv();
    auto s = OpenDaf(env_.get(), "/s", kBlock, 64);
    ASSERT_TRUE(s.ok());
    store_ = std::move(s).ValueOrDie();
    std::vector<uint8_t> buf(kBlock);
    for (int64_t b = 0; b < 64; ++b) {
      std::fill(buf.begin(), buf.end(), static_cast<uint8_t>(b));
      ASSERT_TRUE(store_->WriteBlock(b, buf.data()).ok());
    }
  }

  // Fetch+unpin so the block lingers as evictable cache.
  void Cache(BufferPool* pool, int64_t b) {
    auto f = pool->Fetch(0, b, kBlock, store_.get(), /*load=*/true);
    ASSERT_TRUE(f.ok());
    pool->Unpin(*f);
  }

  static constexpr int64_t kBlock = 128;
  std::unique_ptr<Env> env_;
  std::unique_ptr<BlockStore> store_;
};

TEST_F(ReplacementTest, LruVictimOrderIsLastTouchNotUnpinTime) {
  // b0 is touched first but unpinned last; historical LRU (one list,
  // position = last touch) still evicts b0 first. A policy ordering by
  // unpin time would evict b1 — that is the regression this guards.
  BufferPool pool(3 * kBlock);
  auto f0 = pool.Fetch(0, 0, kBlock, store_.get(), true);  // touch b0, pin
  ASSERT_TRUE(f0.ok());
  Cache(&pool, 1);  // touch b1, immediately evictable
  Cache(&pool, 2);  // touch b2
  pool.Unpin(*f0);  // b0 becomes evictable last, but was touched first
  Cache(&pool, 3);  // cap forces one eviction
  EXPECT_EQ(pool.Probe(0, 0), nullptr);
  EXPECT_NE(pool.Probe(0, 1), nullptr);
  EXPECT_NE(pool.Probe(0, 2), nullptr);
  EXPECT_EQ(pool.stats().evictions, 1);
}

TEST_F(ReplacementTest, LruReTouchMovesFrameBack) {
  BufferPool pool(3 * kBlock);
  Cache(&pool, 0);
  Cache(&pool, 1);
  Cache(&pool, 2);
  Cache(&pool, 0);  // hit: b0 becomes most recent
  Cache(&pool, 3);  // evicts b1, the least recently touched
  EXPECT_NE(pool.Probe(0, 0), nullptr);
  EXPECT_EQ(pool.Probe(0, 1), nullptr);
}

TEST_F(ReplacementTest, ClockSkipsPinnedAndRetained) {
  BufferPool pool(3 * kBlock,
                  MakeReplacementPolicy(ReplacementKind::kClock));
  auto pinned = pool.Fetch(0, 0, kBlock, store_.get(), true);
  ASSERT_TRUE(pinned.ok());
  auto retained = pool.Fetch(0, 1, kBlock, store_.get(), true);
  ASSERT_TRUE(retained.ok());
  pool.Retain(*retained, /*until_group=*/9);
  pool.Unpin(*retained);
  Cache(&pool, 2);
  Cache(&pool, 3);  // must evict b2 — the only evictable frame
  EXPECT_NE(pool.Probe(0, 0), nullptr);
  EXPECT_NE(pool.Probe(0, 1), nullptr);
  EXPECT_EQ(pool.Probe(0, 2), nullptr);
  pool.Unpin(*pinned);
}

TEST_F(ReplacementTest, ClockSecondChanceSurvivesOneSweep) {
  BufferPool pool(3 * kBlock,
                  MakeReplacementPolicy(ReplacementKind::kClock));
  Cache(&pool, 0);
  Cache(&pool, 1);
  Cache(&pool, 2);
  // Evictions clear reference bits; a full pass of inserts must cycle
  // through every frame exactly once before any block is evicted twice.
  Cache(&pool, 3);
  Cache(&pool, 4);
  Cache(&pool, 5);
  EXPECT_EQ(pool.stats().evictions, 3);
  // The three originals are gone; the three newest are resident.
  EXPECT_EQ(pool.Probe(0, 0), nullptr);
  EXPECT_EQ(pool.Probe(0, 1), nullptr);
  EXPECT_EQ(pool.Probe(0, 2), nullptr);
  EXPECT_NE(pool.Probe(0, 3), nullptr);
  EXPECT_NE(pool.Probe(0, 4), nullptr);
  EXPECT_NE(pool.Probe(0, 5), nullptr);
}

TEST_F(ReplacementTest, ScheduleOptEvictsFarthestNextUse) {
  BufferPool pool(3 * kBlock,
                  MakeReplacementPolicy(ReplacementKind::kScheduleOpt));
  auto uses = std::make_shared<BlockUseMap>();
  (*uses)[{0, 0}] = {50};      // needed far in the future
  (*uses)[{0, 1}] = {10};      // needed soon
  (*uses)[{0, 2}] = {20};
  pool.BindUsePlan(uses);
  pool.AdvanceReplacementClock(1);
  Cache(&pool, 0);
  Cache(&pool, 1);
  Cache(&pool, 2);
  Cache(&pool, 3);  // b3 has no future use, but it is incoming; victim = b0
  EXPECT_EQ(pool.Probe(0, 0), nullptr);
  EXPECT_NE(pool.Probe(0, 1), nullptr);
  EXPECT_NE(pool.Probe(0, 2), nullptr);
  // b3 is never used again: it goes first from now on.
  Cache(&pool, 4);
  EXPECT_EQ(pool.Probe(0, 3), nullptr);
  EXPECT_NE(pool.Probe(0, 1), nullptr);
  pool.UnbindUsePlan(uses);
}

TEST_F(ReplacementTest, ScheduleOptRefreshesPassedUses) {
  BufferPool pool(2 * kBlock,
                  MakeReplacementPolicy(ReplacementKind::kScheduleOpt));
  auto uses = std::make_shared<BlockUseMap>();
  (*uses)[{0, 0}] = {10};       // after pos 10 passes: never again
  (*uses)[{0, 1}] = {5, 30};    // after pos 5 passes: needed at 30
  pool.BindUsePlan(uses);
  Cache(&pool, 0);
  Cache(&pool, 1);
  // The clock moves past both blocks' first uses; b0's next use is now
  // "never" while b1 is still due at 30 — the stale cached positions must
  // be refreshed, evicting b0.
  pool.AdvanceReplacementClock(15);
  Cache(&pool, 2);
  EXPECT_EQ(pool.Probe(0, 0), nullptr);
  EXPECT_NE(pool.Probe(0, 1), nullptr);
}

TEST_F(ReplacementTest, ScheduleOptUnboundDegradesToLru) {
  BufferPool pool(3 * kBlock,
                  MakeReplacementPolicy(ReplacementKind::kScheduleOpt));
  EXPECT_EQ(pool.replacement_kind(), ReplacementKind::kScheduleOpt);
  Cache(&pool, 0);
  Cache(&pool, 1);
  Cache(&pool, 2);
  Cache(&pool, 0);  // most recent again
  Cache(&pool, 3);  // no plan bound: LRU order evicts b1
  EXPECT_NE(pool.Probe(0, 0), nullptr);
  EXPECT_EQ(pool.Probe(0, 1), nullptr);
}

TEST_F(ReplacementTest, ScheduleOptNeverEvictsPinnedOrRetained) {
  BufferPool pool(2 * kBlock,
                  MakeReplacementPolicy(ReplacementKind::kScheduleOpt));
  auto uses = std::make_shared<BlockUseMap>();
  (*uses)[{0, 0}] = {100};  // farthest next use — but pinned
  pool.BindUsePlan(uses);
  auto pinned = pool.Fetch(0, 0, kBlock, store_.get(), true);
  ASSERT_TRUE(pinned.ok());
  Cache(&pool, 1);
  Cache(&pool, 2);  // must evict b1, not the pinned b0
  EXPECT_NE(pool.Probe(0, 0), nullptr);
  EXPECT_EQ(pool.Probe(0, 1), nullptr);
  pool.Unpin(*pinned);
}

TEST_F(ReplacementTest, MergedClockComparesNormalizedDistances) {
  // Two plans with wildly different absolute position scales: plan A is at
  // pos 100 of a long program, plan B at pos 2 of a short one. Raw
  // positions would call A's blocks "later"; normalized remaining-instance
  // distances compare them correctly.
  BufferPool pool(3 * kBlock,
                  MakeReplacementPolicy(ReplacementKind::kScheduleOpt));
  auto a = std::make_shared<BlockUseMap>();
  (*a)[{0, 0}] = {103};  // 3 instances away for A
  auto b = std::make_shared<BlockUseMap>();
  (*b)[{0, 1}] = {12};  // 10 instances away for B
  (*b)[{0, 2}] = {4};   // 2 instances away for B
  pool.BindUsePlan(a);
  pool.BindUsePlan(b);
  pool.AdvanceReplacementClock(a, 100);
  pool.AdvanceReplacementClock(b, 2);
  Cache(&pool, 0);
  Cache(&pool, 1);
  Cache(&pool, 2);
  // Distances: b0 = 3 (A), b1 = 10 (B), b2 = 2 (B). Farthest is b1 even
  // though its absolute position (12) is far below b0's (103).
  Cache(&pool, 3);
  EXPECT_NE(pool.Probe(0, 0), nullptr);
  EXPECT_EQ(pool.Probe(0, 1), nullptr);
  EXPECT_NE(pool.Probe(0, 2), nullptr);
  pool.UnbindUsePlan(a);
  pool.UnbindUsePlan(b);
}

TEST_F(ReplacementTest, MergedClockSharedFrameTakesMinimumDistance) {
  // Both tenants read block 0; tenant A not for a long time, tenant B
  // soon. The shared frame must be kept on B's account (min distance),
  // so the victim is the frame only A claims, at a middling distance.
  BufferPool pool(2 * kBlock,
                  MakeReplacementPolicy(ReplacementKind::kScheduleOpt));
  auto a = std::make_shared<BlockUseMap>();
  (*a)[{0, 0}] = {90};  // 90 away for A
  (*a)[{0, 1}] = {50};  // 50 away for A
  auto b = std::make_shared<BlockUseMap>();
  (*b)[{0, 0}] = {1};  // but only 1 away for B
  pool.BindUsePlan(a);
  pool.BindUsePlan(b);
  Cache(&pool, 0);
  Cache(&pool, 1);
  Cache(&pool, 2);  // victim must be b1 (dist 50), not the shared b0
  EXPECT_NE(pool.Probe(0, 0), nullptr);
  EXPECT_EQ(pool.Probe(0, 1), nullptr);
  pool.UnbindUsePlan(a);
  pool.UnbindUsePlan(b);
}

TEST_F(ReplacementTest, MergedClockUnclaimedFramesGoFirstInLruOrder) {
  BufferPool pool(3 * kBlock,
                  MakeReplacementPolicy(ReplacementKind::kScheduleOpt));
  auto a = std::make_shared<BlockUseMap>();
  (*a)[{0, 0}] = {5};
  auto b = std::make_shared<BlockUseMap>();
  (*b)[{0, 0}] = {7};
  pool.BindUsePlan(a);
  pool.BindUsePlan(b);
  Cache(&pool, 0);  // claimed by both plans
  Cache(&pool, 1);  // unclaimed
  Cache(&pool, 2);  // unclaimed
  Cache(&pool, 1);  // re-touch: b2 is now the least recent unclaimed
  // Unclaimed frames are better victims than any claimed frame, LRU
  // among themselves: evict b2, then b1, before touching b0.
  Cache(&pool, 3);
  EXPECT_EQ(pool.Probe(0, 2), nullptr);
  EXPECT_NE(pool.Probe(0, 0), nullptr);
  EXPECT_NE(pool.Probe(0, 1), nullptr);
  Cache(&pool, 4);  // b3 (unclaimed, older than b1? no — b1 older) —
  // after the previous insert order is b1 (oldest), b3, b4: evict b1.
  EXPECT_EQ(pool.Probe(0, 1), nullptr);
  EXPECT_NE(pool.Probe(0, 0), nullptr);
  pool.UnbindUsePlan(a);
  pool.UnbindUsePlan(b);
}

TEST_F(ReplacementTest, MergedClockAdvanceShiftsOnlyThatPlansDistances) {
  // A frame's cached distance must not survive its plan's clock advance:
  // after B runs 8 instances, B's block is due in 1, A's in 4.
  BufferPool pool(2 * kBlock,
                  MakeReplacementPolicy(ReplacementKind::kScheduleOpt));
  auto a = std::make_shared<BlockUseMap>();
  (*a)[{0, 0}] = {4};  // 4 away for A (A never advances)
  auto b = std::make_shared<BlockUseMap>();
  (*b)[{0, 1}] = {9};  // 9 away for B at bind time
  pool.BindUsePlan(a);
  pool.BindUsePlan(b);
  Cache(&pool, 0);
  Cache(&pool, 1);
  // At bind-time distances (b0=4, b1=9) the victim would be b1. After B
  // advances to 8, b1's distance is 1 — the victim must become b0.
  pool.AdvanceReplacementClock(b, 8);
  Cache(&pool, 2);
  EXPECT_EQ(pool.Probe(0, 0), nullptr);
  EXPECT_NE(pool.Probe(0, 1), nullptr);
  pool.UnbindUsePlan(a);
  pool.UnbindUsePlan(b);
}

TEST_F(ReplacementTest, MergedClockSoleSurvivorResumesExactBelady) {
  BufferPool pool(2 * kBlock,
                  MakeReplacementPolicy(ReplacementKind::kScheduleOpt));
  auto a = std::make_shared<BlockUseMap>();
  (*a)[{0, 0}] = {10};
  (*a)[{0, 1}] = {20};
  auto b = std::make_shared<BlockUseMap>();
  (*b)[{0, 0}] = {1};
  pool.BindUsePlan(a);
  pool.AdvanceReplacementClock(a, 5);
  pool.BindUsePlan(b);
  // B departs; A must resume solo Belady from its own clock (5), not
  // from zero: b0 (next use 10) goes before b1 (next use 20)? No —
  // farthest next use is the victim: b1 at 20 goes first.
  pool.UnbindUsePlan(b);
  Cache(&pool, 0);
  Cache(&pool, 1);
  Cache(&pool, 2);
  EXPECT_NE(pool.Probe(0, 0), nullptr);
  EXPECT_EQ(pool.Probe(0, 1), nullptr);
  pool.UnbindUsePlan(a);
}

TEST_F(ReplacementTest, AllPoliciesFailCleanlyWhenEverythingIsPinned) {
  for (ReplacementKind kind : {ReplacementKind::kLru, ReplacementKind::kClock,
                               ReplacementKind::kScheduleOpt}) {
    SCOPED_TRACE(ReplacementKindName(kind));
    BufferPool pool(2 * kBlock, MakeReplacementPolicy(kind));
    auto a = pool.Fetch(0, 0, kBlock, store_.get(), true);
    auto b = pool.Fetch(0, 1, kBlock, store_.get(), true);
    auto c = pool.Fetch(0, 2, kBlock, store_.get(), true);
    EXPECT_FALSE(c.ok());
    EXPECT_EQ(c.status().code(), StatusCode::kResourceExhausted);
    pool.Unpin(*a);
    pool.Unpin(*b);
  }
}

}  // namespace
}  // namespace riot
