// Failure injection: I/O errors must propagate cleanly (as Status) through
// every layer — block stores, buffer pool, executor — never crash or
// corrupt.
#include <gtest/gtest.h>

#include "core/optimizer.h"
#include "exec/executor.h"
#include "exec/verify.h"
#include "ops/runtime.h"
#include "ops/workload.h"
#include "storage/block_store.h"
#include "storage/buffer_pool.h"
#include "storage/env.h"

namespace riot {
namespace {

TEST(FaultInjectionTest, StoreSurfacesInjectedErrors) {
  auto mem = NewMemEnv();
  auto env = NewFaultyEnv(mem.get(), /*fail_after_ops=*/3);
  auto store = OpenDaf(env.get(), "/f", 64, 8);
  std::vector<uint8_t> buf(64);
  EXPECT_TRUE((*store)->WriteBlock(0, buf.data()).ok());
  EXPECT_TRUE((*store)->WriteBlock(1, buf.data()).ok());
  EXPECT_TRUE((*store)->ReadBlock(0, buf.data()).ok());
  auto st = (*store)->ReadBlock(1, buf.data());
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError);
}

TEST(FaultInjectionTest, BufferPoolPropagatesLoadFailure) {
  auto mem = NewMemEnv();
  {
    auto pre = OpenDaf(mem.get(), "/f", 64, 8);
    std::vector<uint8_t> buf(64);
    ASSERT_TRUE((*pre)->WriteBlock(0, buf.data()).ok());
  }
  auto env = NewFaultyEnv(mem.get(), 0);  // fail immediately
  auto store = OpenDaf(env.get(), "/f", 64, 8);
  BufferPool pool(1024);
  auto f = pool.Fetch(0, 0, 64, store->get(), /*load=*/true);
  EXPECT_FALSE(f.ok());
  EXPECT_EQ(f.status().code(), StatusCode::kIoError);
  // The pool must not leak a half-constructed frame.
  EXPECT_EQ(pool.Probe(0, 0), nullptr);
}

TEST(FaultInjectionTest, ExecutorReturnsErrorMidPlan) {
  Workload w = MakeExample1(2, 2, 1);
  auto mem = NewMemEnv();
  // Initialize inputs through the healthy env, then run through a faulty
  // wrapper that dies partway into execution.
  {
    auto rt = OpenStores(mem.get(), w.program, "/d");
    ASSERT_TRUE(rt.ok());
    ASSERT_TRUE(InitInputs(w, *rt, 5).ok());
  }
  auto env = NewFaultyEnv(mem.get(), /*fail_after_ops=*/7);
  auto rt = OpenStores(env.get(), w.program, "/d");
  ASSERT_TRUE(rt.ok());
  Executor ex(w.program, rt->raw(), w.kernels);
  auto stats = ex.Run(w.program.original_schedule(), {});
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kIoError);
}

TEST(FaultInjectionTest, ParallelExecutorSurfacesErrorsCleanly) {
  // An I/O error injected at an arbitrary point of a parallel run must
  // surface as a clean Status from Executor::Run: all kernel and I/O
  // workers joined (a hang here trips the ctest timeout), no frame left
  // pinned, no retention left behind — asserted through a shared pool.
  Workload w = MakeTwoMatMul(TwoMatMulConfig::kConfigA, /*scale=*/1000);
  auto mem = NewMemEnv();
  {
    auto rt = OpenStores(mem.get(), w.program, "/d");
    ASSERT_TRUE(rt.ok());
    ASSERT_TRUE(InitInputs(w, *rt, 5).ok());
  }
  size_t failures = 0;
  for (int64_t fail_after : {0, 1, 3, 9, 17, 40, 77, 150, 400}) {
    SCOPED_TRACE("fail_after=" + std::to_string(fail_after));
    auto env = NewFaultyEnv(mem.get(), fail_after);
    auto rt = OpenStores(env.get(), w.program, "/d");
    if (!rt.ok()) continue;  // store open itself hit the fault: also clean
    BufferPool pool(int64_t{1} << 30);
    ExecOptions eo;
    eo.exec_threads = 4;
    eo.pipeline_depth = 2;
    eo.shared_pool = &pool;
    Executor ex(w.program, rt->raw(), w.kernels, eo);
    auto stats = ex.Run(w.program.original_schedule(), {});
    if (!stats.ok()) {
      EXPECT_EQ(stats.status().code(), StatusCode::kIoError)
          << stats.status().ToString();
      ++failures;
    }
    EXPECT_EQ(pool.PinnedFrames(), 0);
    EXPECT_EQ(pool.PinnedOrRetainedBytes(), 0);
  }
  EXPECT_GT(failures, 0u) << "every fail point outran the program";
}

TEST(FaultInjectionTest, FailedLoadNeverPoisonsSharedPool) {
  // A failed disk read leaves its target frame zero-filled; the frame must
  // be discarded, not left registered as clean cache — otherwise a later
  // run sharing the pool (whose parallel engine serves resident frames
  // without re-reading disk) would silently compute on zeros.
  Workload w = MakeTwoMatMul(TwoMatMulConfig::kConfigA, /*scale=*/1000);
  auto mem = NewMemEnv();
  Runtime healthy_ref;
  {
    auto rt = OpenStores(mem.get(), w.program, "/p");
    ASSERT_TRUE(rt.ok());
    ASSERT_TRUE(InitInputs(w, *rt, 5).ok());
    auto ref = OpenStores(mem.get(), w.program, "/p_ref");
    ASSERT_TRUE(ref.ok());
    ASSERT_TRUE(InitInputs(w, *ref, 5).ok());
    Executor ex(w.program, ref->raw(), w.kernels);
    auto st = ex.Run(w.program.original_schedule(), {});
    ASSERT_TRUE(st.ok());
    healthy_ref = std::move(ref).ValueOrDie();
  }

  BufferPool pool(int64_t{1} << 30);
  size_t poisoned_attempts = 0;
  for (int64_t fail_after : {5, 20, 60, 120}) {
    auto env = NewFaultyEnv(mem.get(), fail_after);
    auto rt = OpenStores(env.get(), w.program, "/p");
    if (!rt.ok()) continue;
    ExecOptions eo;
    eo.exec_threads = 4;
    eo.pipeline_depth = 2;
    eo.shared_pool = &pool;
    Executor ex(w.program, rt->raw(), w.kernels, eo);
    auto stats = ex.Run(w.program.original_schedule(), {});
    if (!stats.ok()) ++poisoned_attempts;
    EXPECT_EQ(pool.PinnedFrames(), 0);
  }
  ASSERT_GT(poisoned_attempts, 0u);

  // Same pool, healthy env: outputs must match a fresh reference exactly.
  auto rt = OpenStores(mem.get(), w.program, "/p");
  ASSERT_TRUE(rt.ok());
  ASSERT_TRUE(InitInputs(w, *rt, 5).ok());
  ExecOptions eo;
  eo.exec_threads = 4;
  eo.pipeline_depth = 2;
  eo.shared_pool = &pool;
  Executor ex(w.program, rt->raw(), w.kernels, eo);
  auto stats = ex.Run(w.program.original_schedule(), {});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  for (int arr : w.output_arrays) {
    const ArrayInfo& info = w.program.array(arr);
    auto d = MaxAbsDifference(
        info, healthy_ref.stores[static_cast<size_t>(arr)].get(),
        rt->stores[static_cast<size_t>(arr)].get());
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(*d, 0.0) << "array " << info.name;
  }
}

TEST(FaultInjectionTest, SerialPipelinedExecutorReleasesPinsOnError) {
  // The serial engine's error paths honor the same shared-pool contract.
  Workload w = MakeExample1(2, 2, 1);
  auto mem = NewMemEnv();
  {
    auto rt = OpenStores(mem.get(), w.program, "/s");
    ASSERT_TRUE(rt.ok());
    ASSERT_TRUE(InitInputs(w, *rt, 5).ok());
  }
  for (int depth : {0, 2}) {
    SCOPED_TRACE("depth=" + std::to_string(depth));
    auto env = NewFaultyEnv(mem.get(), /*fail_after_ops=*/7);
    auto rt = OpenStores(env.get(), w.program, "/s");
    ASSERT_TRUE(rt.ok());
    BufferPool pool(int64_t{1} << 30);
    ExecOptions eo;
    eo.pipeline_depth = depth;
    eo.shared_pool = &pool;
    Executor ex(w.program, rt->raw(), w.kernels, eo);
    auto stats = ex.Run(w.program.original_schedule(), {});
    ASSERT_FALSE(stats.ok());
    EXPECT_EQ(stats.status().code(), StatusCode::kIoError);
    EXPECT_EQ(pool.PinnedFrames(), 0);
    EXPECT_EQ(pool.PinnedOrRetainedBytes(), 0);
  }
}

TEST(FaultInjectionTest, LabTreeOpenRejectsCorruptHeader) {
  auto env = NewMemEnv();
  {
    auto f = env->OpenFile("/t", true);
    const char garbage[64] = "not a labtree";
    ASSERT_TRUE((*f)->Write(0, sizeof(garbage), garbage).ok());
  }
  auto store = OpenLabTree(env.get(), "/t", 64);
  EXPECT_FALSE(store.ok());
}

TEST(FaultInjectionTest, LabTreeRejectsBlockSizeMismatch) {
  auto env = NewMemEnv();
  {
    auto store = OpenLabTree(env.get(), "/t", 128);
    std::vector<uint8_t> buf(128);
    ASSERT_TRUE((*store)->WriteBlock(0, buf.data()).ok());
    ASSERT_TRUE((*store)->Flush().ok());
  }
  auto reopened = OpenLabTree(env.get(), "/t", 256);
  EXPECT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace riot
