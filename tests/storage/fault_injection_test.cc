// Failure injection: I/O errors must propagate cleanly (as Status) through
// every layer — block stores, buffer pool, executor — never crash or
// corrupt.
#include <gtest/gtest.h>

#include "core/optimizer.h"
#include "exec/executor.h"
#include "ops/runtime.h"
#include "ops/workload.h"
#include "storage/block_store.h"
#include "storage/buffer_pool.h"
#include "storage/env.h"

namespace riot {
namespace {

TEST(FaultInjectionTest, StoreSurfacesInjectedErrors) {
  auto mem = NewMemEnv();
  auto env = NewFaultyEnv(mem.get(), /*fail_after_ops=*/3);
  auto store = OpenDaf(env.get(), "/f", 64, 8);
  std::vector<uint8_t> buf(64);
  EXPECT_TRUE((*store)->WriteBlock(0, buf.data()).ok());
  EXPECT_TRUE((*store)->WriteBlock(1, buf.data()).ok());
  EXPECT_TRUE((*store)->ReadBlock(0, buf.data()).ok());
  auto st = (*store)->ReadBlock(1, buf.data());
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError);
}

TEST(FaultInjectionTest, BufferPoolPropagatesLoadFailure) {
  auto mem = NewMemEnv();
  {
    auto pre = OpenDaf(mem.get(), "/f", 64, 8);
    std::vector<uint8_t> buf(64);
    ASSERT_TRUE((*pre)->WriteBlock(0, buf.data()).ok());
  }
  auto env = NewFaultyEnv(mem.get(), 0);  // fail immediately
  auto store = OpenDaf(env.get(), "/f", 64, 8);
  BufferPool pool(1024);
  auto f = pool.Fetch(0, 0, 64, store->get(), /*load=*/true);
  EXPECT_FALSE(f.ok());
  EXPECT_EQ(f.status().code(), StatusCode::kIoError);
  // The pool must not leak a half-constructed frame.
  EXPECT_EQ(pool.Probe(0, 0), nullptr);
}

TEST(FaultInjectionTest, ExecutorReturnsErrorMidPlan) {
  Workload w = MakeExample1(2, 2, 1);
  auto mem = NewMemEnv();
  // Initialize inputs through the healthy env, then run through a faulty
  // wrapper that dies partway into execution.
  {
    auto rt = OpenStores(mem.get(), w.program, "/d");
    ASSERT_TRUE(rt.ok());
    ASSERT_TRUE(InitInputs(w, *rt, 5).ok());
  }
  auto env = NewFaultyEnv(mem.get(), /*fail_after_ops=*/7);
  auto rt = OpenStores(env.get(), w.program, "/d");
  ASSERT_TRUE(rt.ok());
  Executor ex(w.program, rt->raw(), w.kernels);
  auto stats = ex.Run(w.program.original_schedule(), {});
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kIoError);
}

TEST(FaultInjectionTest, LabTreeOpenRejectsCorruptHeader) {
  auto env = NewMemEnv();
  {
    auto f = env->OpenFile("/t", true);
    const char garbage[64] = "not a labtree";
    ASSERT_TRUE((*f)->Write(0, sizeof(garbage), garbage).ok());
  }
  auto store = OpenLabTree(env.get(), "/t", 64);
  EXPECT_FALSE(store.ok());
}

TEST(FaultInjectionTest, LabTreeRejectsBlockSizeMismatch) {
  auto env = NewMemEnv();
  {
    auto store = OpenLabTree(env.get(), "/t", 128);
    std::vector<uint8_t> buf(128);
    ASSERT_TRUE((*store)->WriteBlock(0, buf.data()).ok());
    ASSERT_TRUE((*store)->Flush().ok());
  }
  auto reopened = OpenLabTree(env.get(), "/t", 256);
  EXPECT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace riot
