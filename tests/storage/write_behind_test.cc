// Asynchronous write-behind: dirty eviction victims are handed to IoPool
// write workers; a write barrier orders later reads/prefetches of an
// in-flight block after the pending write. These tests drive the race
// surface directly — reads, prefetches, and eviction write-backs hitting
// the same (array, block) — and the failure path (injected write errors
// must surface as clean Status, never tear a frame or lose an
// acknowledged write). The concurrent test is a TSan target: it runs
// under the CI sanitizer matrix.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <random>
#include <thread>
#include <vector>

#include "storage/block_store.h"
#include "storage/buffer_pool.h"
#include "storage/env.h"
#include "storage/io_pool.h"

namespace riot {
namespace {

constexpr int64_t kBlock = 256;

// Wraps a BlockStore and dilates every write, widening the in-flight
// window the barrier must cover.
class SlowWriteStore : public BlockStore {
 public:
  SlowWriteStore(BlockStore* base, int write_delay_ms)
      : BlockStore(base->block_bytes()), base_(base),
        delay_ms_(write_delay_ms) {}

  Status ReadBlock(int64_t block, void* buf) override {
    return base_->ReadBlock(block, buf);
  }
  Status WriteBlock(int64_t block, const void* buf) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms_));
    return base_->WriteBlock(block, buf);
  }
  bool HasBlock(int64_t block) override { return base_->HasBlock(block); }

 private:
  BlockStore* base_;
  int delay_ms_;
};

class WriteBehindTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv();
    auto s = OpenDaf(env_.get(), "/s", kBlock, 64);
    ASSERT_TRUE(s.ok());
    store_ = std::move(s).ValueOrDie();
    std::vector<uint8_t> buf(kBlock, 0);
    for (int64_t b = 0; b < 64; ++b) {
      ASSERT_TRUE(store_->WriteBlock(b, buf.data()).ok());
    }
  }

  // Pins block `b`, fills it with `value`, marks it dirty, unpins.
  void DirtyFill(BufferPool* pool, BlockStore* store, int64_t b,
                 uint8_t value) {
    auto f = pool->Fetch(0, b, kBlock, store, /*load=*/false);
    ASSERT_TRUE(f.ok());
    std::fill((*f)->data.begin(), (*f)->data.end(), value);
    (*f)->dirty = true;
    pool->Unpin(*f);
  }

  std::unique_ptr<Env> env_;
  std::unique_ptr<BlockStore> store_;
};

TEST_F(WriteBehindTest, AsyncSpillLandsOnDisk) {
  IoPool io(2);
  BufferPool pool(1 * kBlock);
  pool.SetWriteBehind(&io);
  DirtyFill(&pool, store_.get(), 0, 0xAB);
  // Fetching a second block forces the dirty victim out asynchronously.
  auto f = pool.Fetch(0, 1, kBlock, store_.get(), /*load=*/true);
  ASSERT_TRUE(f.ok());
  pool.Unpin(*f);
  ASSERT_TRUE(pool.DrainWritebacks().ok());
  pool.SetWriteBehind(nullptr);
  std::vector<uint8_t> buf(kBlock);
  ASSERT_TRUE(store_->ReadBlock(0, buf.data()).ok());
  EXPECT_EQ(buf[0], 0xAB);
  EXPECT_EQ(buf[kBlock - 1], 0xAB);
  const BufferPoolStats st = pool.stats();
  EXPECT_EQ(st.dirty_writebacks, 1);
  EXPECT_EQ(st.async_writebacks, 1);
  EXPECT_EQ(st.evictions, 1);
}

TEST_F(WriteBehindTest, FetchBarrierObservesPendingWrite) {
  SlowWriteStore slow(store_.get(), /*write_delay_ms=*/100);
  IoPool io(1);
  BufferPool pool(1 * kBlock);
  pool.SetWriteBehind(&io);
  DirtyFill(&pool, &slow, 0, 0xCD);
  // load=false: returns as soon as the dirty victim is handed to the
  // (slow, 100 ms) writer, leaving the write in flight.
  auto f1 = pool.Fetch(0, 1, kBlock, &slow, /*load=*/false);
  ASSERT_TRUE(f1.ok());
  pool.Unpin(*f1);
  // Re-fetch block 0 with a disk load: the barrier must hold the fetch
  // until the pending write lands, so the load sees 0xCD — not the stale
  // zeros a racing read would observe.
  auto f0 = pool.Fetch(0, 0, kBlock, &slow, /*load=*/true);
  ASSERT_TRUE(f0.ok());
  EXPECT_EQ((*f0)->data[0], 0xCD);
  EXPECT_EQ((*f0)->data[kBlock - 1], 0xCD);
  pool.Unpin(*f0);
  EXPECT_GT(pool.stats().writeback_stall_seconds, 0.0);
  ASSERT_TRUE(pool.DrainWritebacks().ok());
  pool.SetWriteBehind(nullptr);
}

TEST_F(WriteBehindTest, PrefetchOfInFlightBlockIsDeclined) {
  SlowWriteStore slow(store_.get(), /*write_delay_ms=*/100);
  IoPool io(1);
  BufferPool pool(2 * kBlock);
  pool.SetWriteBehind(&io);
  pool.SetPrefetchBudget(2 * kBlock);
  DirtyFill(&pool, &slow, 0, 0xEF);
  // load=false keeps this fetch from serializing behind the in-flight
  // write; block 0's 100 ms write-back is still pending afterwards.
  auto f = pool.Fetch(0, 2, kBlock, &slow, /*load=*/false);
  ASSERT_TRUE(f.ok());
  auto g = pool.Fetch(0, 3, kBlock, &slow, /*load=*/false);
  ASSERT_TRUE(g.ok());
  // A prefetch of the in-flight block must be declined, not raced.
  EXPECT_EQ(pool.TryStartPrefetch(0, 0, kBlock, &slow), nullptr);
  EXPECT_GE(pool.stats().prefetch_declined, 1);
  pool.Unpin(*f);
  pool.Unpin(*g);
  ASSERT_TRUE(pool.DrainWritebacks().ok());
  pool.SetWriteBehind(nullptr);
  std::vector<uint8_t> buf(kBlock);
  ASSERT_TRUE(store_->ReadBlock(0, buf.data()).ok());
  EXPECT_EQ(buf[0], 0xEF);
}

TEST_F(WriteBehindTest, ConcurrentReadEvictionWritebackNoTornOrLostWrites) {
  // Three threads under a two-frame cap, every eviction a write-behind:
  //   * a writer cycling blocks {0, 1}: verify-on-fetch (a miss loads the
  //     last acknowledged fill through the barrier — a stale or torn read
  //     would mix values), then fill with the next value, dirty, unpin;
  //   * a reader cycling blocks {2, 3} the same way;
  //   * a prefetcher churning blocks {4, 5} through the prefetch
  //     lifecycle, competing for the same frames.
  // The 1 ms write delay plus the single-entry write-behind budget
  // (cap/4 < block) keeps a write in flight almost continuously, so
  // fetches constantly cross in-flight write-backs of the same blocks.
  SlowWriteStore slow(store_.get(), /*write_delay_ms=*/1);
  IoPool io(2);
  BufferPool pool(2 * kBlock);
  pool.SetWriteBehind(&io);
  pool.SetPrefetchBudget(kBlock);
  std::atomic<bool> failed{false};
  std::atomic<bool> stop{false};

  auto cycle = [&](int64_t lo, uint64_t seed, int iters) {
    std::mt19937 rng(static_cast<unsigned>(seed));
    std::vector<uint8_t> last(2, 0);
    for (int i = 1; i <= iters && !failed.load(); ++i) {
      const int64_t b = lo + static_cast<int64_t>(rng() % 2);
      auto f = pool.Fetch(0, b, kBlock, &slow, /*load=*/true);
      if (!f.ok()) {
        // Transient cap pressure with three threads pinning is legal; any
        // other error is not (no faults are injected here).
        if (f.status().code() != StatusCode::kResourceExhausted) {
          failed = true;
        }
        continue;
      }
      const uint8_t want = last[static_cast<size_t>(b - lo)];
      // This thread is the block's only mutator: the frame must hold the
      // last acknowledged fill uniformly, whether it survived in cache or
      // went to disk and came back through the write barrier.
      for (int64_t k = 0; k < kBlock; ++k) {
        if ((*f)->data[static_cast<size_t>(k)] != want) {
          failed = true;
          break;
        }
      }
      const uint8_t next = static_cast<uint8_t>(1 + (i % 250));
      std::fill((*f)->data.begin(), (*f)->data.end(), next);
      (*f)->dirty = true;
      last[static_cast<size_t>(b - lo)] = next;
      pool.Unpin(*f);
    }
    return last;
  };

  std::vector<uint8_t> writer_last, reader_last;
  std::thread writer([&] { writer_last = cycle(0, 17, 150); });
  std::thread reader([&] { reader_last = cycle(2, 71, 150); });
  std::thread prefetcher([&] {
    std::mt19937 rng(9);
    while (!stop.load() && !failed.load()) {
      const int64_t b = 4 + static_cast<int64_t>(rng() % 2);
      BufferPool::Frame* f = pool.TryStartPrefetch(0, b, kBlock, &slow);
      if (f == nullptr) {
        std::this_thread::yield();
        continue;
      }
      if (!slow.ReadBlock(b, f->data.data()).ok()) failed = true;
      pool.CompletePrefetch(f);
      pool.AbandonPrefetch(f);
    }
  });

  writer.join();
  reader.join();
  stop = true;
  prefetcher.join();
  EXPECT_FALSE(failed.load());
  ASSERT_TRUE(pool.DrainWritebacks().ok());
  ASSERT_TRUE(pool.FlushAll().ok());
  pool.SetWriteBehind(nullptr);
  // No lost write: disk holds each block's last acknowledged fill.
  for (int64_t b = 0; b < 4; ++b) {
    const uint8_t want = b < 2 ? writer_last[static_cast<size_t>(b)]
                               : reader_last[static_cast<size_t>(b - 2)];
    if (want == 0) continue;  // never touched
    std::vector<uint8_t> buf(kBlock);
    ASSERT_TRUE(store_->ReadBlock(b, buf.data()).ok());
    EXPECT_EQ(buf[0], want) << "block " << b;
    EXPECT_EQ(buf[kBlock - 1], want) << "block " << b;
  }
}

TEST_F(WriteBehindTest, InjectedWriteFailureSurfacesCleanly) {
  auto faulty_env = NewFaultyEnv(env_.get(), /*fail_after_ops=*/0);
  auto faulty = OpenDaf(faulty_env.get(), "/s", kBlock, 64);
  ASSERT_TRUE(faulty.ok());
  IoPool io(1);
  BufferPool pool(1 * kBlock);
  pool.SetWriteBehind(&io);
  DirtyFill(&pool, faulty->get(), 0, 0x77);
  // Eviction hands the dirty frame to the writer, whose write fails.
  auto f = pool.Fetch(0, 1, kBlock, store_.get(), true);
  ASSERT_TRUE(f.ok());
  pool.Unpin(*f);
  // The failed block is poisoned: a fetch surfaces the write's error
  // instead of silently rereading the stale disk image.
  auto poisoned = pool.Fetch(0, 0, kBlock, faulty->get(), true);
  ASSERT_FALSE(poisoned.ok());
  EXPECT_EQ(poisoned.status().code(), StatusCode::kIoError);
  // Draining reports the failure once and restores the pool to a usable
  // state.
  Status drain = pool.DrainWritebacks();
  EXPECT_FALSE(drain.ok());
  EXPECT_EQ(drain.code(), StatusCode::kIoError);
  EXPECT_TRUE(pool.DrainWritebacks().ok());
  auto again = pool.Fetch(0, 2, kBlock, store_.get(), true);
  EXPECT_TRUE(again.ok());
  if (again.ok()) pool.Unpin(*again);
  pool.SetWriteBehind(nullptr);
  const BufferPoolStats st = pool.stats();
  EXPECT_EQ(st.async_writebacks, 1);
}

}  // namespace
}  // namespace riot
