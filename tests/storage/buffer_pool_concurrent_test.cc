// Multi-threaded BufferPool stress: concurrent fetch/unpin/retain plus a
// prefetcher thread driving the kPrefetching/kPrefetched lifecycle. The cap
// must never be exceeded, pinned frames must never be evicted (their
// contents stay intact for as long as they are pinned), and the maintained
// pinned-or-retained counter must drain back to zero.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include "storage/buffer_pool.h"

namespace riot {
namespace {

class BufferPoolConcurrentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv();
    auto s = OpenDaf(env_.get(), "/s", kBlock, kNumBlocks);
    ASSERT_TRUE(s.ok());
    store_ = std::move(s).ValueOrDie();
    std::vector<uint8_t> buf(kBlock);
    for (int64_t b = 0; b < kNumBlocks; ++b) {
      std::fill(buf.begin(), buf.end(), static_cast<uint8_t>(b));
      ASSERT_TRUE(store_->WriteBlock(b, buf.data()).ok());
    }
  }

  static constexpr int64_t kBlock = 256;
  static constexpr int64_t kNumBlocks = 64;
  std::unique_ptr<Env> env_;
  std::unique_ptr<BlockStore> store_;
};

TEST_F(BufferPoolConcurrentTest, FetchUnpinRetainStress) {
  constexpr int kThreads = 4;
  constexpr int kIters = 1500;
  constexpr int64_t kCap = 16 * kBlock;
  BufferPool pool(kCap);
  std::atomic<bool> failed{false};
  std::atomic<int64_t> exhausted{0};

  auto worker = [&](int tid) {
    std::mt19937 rng(static_cast<unsigned>(tid) * 7919 + 13);
    // Fetch threads use blocks [0, 32); see prefetcher below.
    std::uniform_int_distribution<int64_t> pick(0, 31);
    for (int i = 0; i < kIters && !failed.load(); ++i) {
      int64_t b = pick(rng);
      auto f = pool.Fetch(0, b, kBlock, store_.get(), /*load=*/true);
      if (!f.ok()) {
        // Transient exhaustion from overlapping retentions is legal; the
        // pool must fail cleanly, not corrupt state.
        if (f.status().code() != StatusCode::kResourceExhausted) {
          failed = true;
        }
        ++exhausted;
        continue;
      }
      BufferPool::Frame* frame = *f;
      std::this_thread::yield();
      // While pinned, the frame must still hold block b's bytes — an
      // eviction of a pinned frame would tear this.
      if (frame->data[0] != static_cast<uint8_t>(b) ||
          frame->data[kBlock - 1] != static_cast<uint8_t>(b)) {
        failed = true;
      }
      if (pool.used_bytes() > kCap) failed = true;
      if (i % 7 == 0) pool.Retain(frame, /*until_group=*/i % 5);
      pool.Unpin(frame);
      if (i % 11 == 0) pool.ReleaseRetainedBefore(/*group=*/i % 5);
    }
  };

  auto prefetcher = [&] {
    pool.SetPrefetchBudget(4 * kBlock);
    std::mt19937 rng(424242);
    // Disjoint block range: Fetch on a block in a prefetch state is an API
    // contract violation (the executor routes those through its pending
    // table), so the stress keeps the ranges separate.
    std::uniform_int_distribution<int64_t> pick(32, kNumBlocks - 1);
    for (int i = 0; i < kIters && !failed.load(); ++i) {
      int64_t b = pick(rng);
      BufferPool::Frame* f = pool.TryStartPrefetch(0, b, kBlock, store_.get());
      if (f == nullptr) continue;  // declined: present, budget, or no room
      if (!store_->ReadBlock(b, f->data.data()).ok()) failed = true;
      pool.CompletePrefetch(f);
      if (i % 2 == 0) {
        BufferPool::Frame* adopted = pool.AdoptPrefetched(f);
        if (adopted->data[0] != static_cast<uint8_t>(b)) failed = true;
        pool.Unpin(adopted);
      } else {
        pool.AbandonPrefetch(f);
      }
      if (pool.used_bytes() > kCap) failed = true;
    }
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(worker, t);
  threads.emplace_back(prefetcher);
  for (auto& t : threads) t.join();

  EXPECT_FALSE(failed.load());
  EXPECT_LE(pool.used_bytes(), kCap);
  EXPECT_EQ(pool.prefetch_bytes(), 0);
  // Everything is unpinned; retentions may linger — release them all.
  pool.ReleaseRetainedBefore(1 << 20);
  EXPECT_EQ(pool.PinnedOrRetainedBytes(), 0);
  // The pool never spilled: stress never dirties a frame.
  EXPECT_EQ(pool.stats().dirty_writebacks, 0);
}

TEST_F(BufferPoolConcurrentTest, MaintainedRequiredBytesMatchesScan) {
  // Single-threaded cross-check of the O(1) counter against ground truth.
  BufferPool pool(32 * kBlock);
  auto a = pool.Fetch(0, 0, kBlock, store_.get(), true);   // pinned
  auto b = pool.Fetch(0, 1, kBlock, store_.get(), true);
  pool.Retain(*b, 3);
  pool.Unpin(*b);                                          // retained only
  auto c = pool.Fetch(0, 2, kBlock, store_.get(), true);
  pool.Unpin(*c);                                          // neither
  EXPECT_EQ(pool.PinnedOrRetainedBytes(), 2 * kBlock);
  pool.ReleaseRetainedBefore(4);
  EXPECT_EQ(pool.PinnedOrRetainedBytes(), 1 * kBlock);
  pool.Unpin(*a);
  EXPECT_EQ(pool.PinnedOrRetainedBytes(), 0);
  // Prefetch frames never count as required.
  pool.SetPrefetchBudget(8 * kBlock);
  BufferPool::Frame* p = pool.TryStartPrefetch(0, 9, kBlock, store_.get());
  ASSERT_NE(p, nullptr);
  pool.CompletePrefetch(p);
  EXPECT_EQ(pool.PinnedOrRetainedBytes(), 0);
  BufferPool::Frame* adopted = pool.AdoptPrefetched(p);
  EXPECT_EQ(pool.PinnedOrRetainedBytes(), kBlock);  // now a pinned regular
  pool.Unpin(adopted);
  EXPECT_EQ(pool.PinnedOrRetainedBytes(), 0);
}

TEST_F(BufferPoolConcurrentTest, PrefetchRespectsBudgetAndCap) {
  BufferPool pool(4 * kBlock);
  pool.SetPrefetchBudget(3 * kBlock);
  // Two pinned consumer frames plus two prefetches fill the cap.
  auto a = pool.Fetch(0, 10, kBlock, store_.get(), true);
  auto b = pool.Fetch(0, 11, kBlock, store_.get(), true);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  BufferPool::Frame* p1 = pool.TryStartPrefetch(0, 1, kBlock, store_.get());
  BufferPool::Frame* p2 = pool.TryStartPrefetch(0, 2, kBlock, store_.get());
  ASSERT_NE(p1, nullptr);
  ASSERT_NE(p2, nullptr);
  // Budget would allow a third prefetch, but every resident frame is
  // pinned or prefetch-owned: no room without evicting a protected frame,
  // so the prefetch is declined rather than erroring or evicting.
  EXPECT_EQ(pool.TryStartPrefetch(0, 3, kBlock, store_.get()), nullptr);
  EXPECT_EQ(pool.stats().prefetch_declined, 1);
  // An abandoned prefetch is dropped outright, freeing both budget and
  // cap room for the next one.
  pool.CompletePrefetch(p1);
  pool.AbandonPrefetch(p1);
  BufferPool::Frame* p4 = pool.TryStartPrefetch(0, 4, kBlock, store_.get());
  ASSERT_NE(p4, nullptr);
  EXPECT_EQ(pool.Probe(0, 1), nullptr);  // p1's block is gone
  EXPECT_LE(pool.used_bytes(), 4 * kBlock);
  // Budget decline: shrink the budget below what is outstanding.
  pool.SetPrefetchBudget(kBlock);
  EXPECT_EQ(pool.TryStartPrefetch(0, 5, kBlock, store_.get()), nullptr);
  pool.Unpin(*a);
  pool.Unpin(*b);
  pool.CompletePrefetch(p2);
  pool.AbandonPrefetch(p2);
  pool.CompletePrefetch(p4);
  pool.AbandonPrefetch(p4);
  EXPECT_EQ(pool.prefetch_bytes(), 0);
}

}  // namespace
}  // namespace riot
