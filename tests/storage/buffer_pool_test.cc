#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

#include "util/aligned.h"

namespace riot {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv();
    auto s = OpenDaf(env_.get(), "/s", kBlock, 64);
    ASSERT_TRUE(s.ok());
    store_ = std::move(s).ValueOrDie();
    // Pre-populate blocks with recognizable bytes.
    std::vector<uint8_t> buf(kBlock);
    for (int64_t b = 0; b < 64; ++b) {
      std::fill(buf.begin(), buf.end(), static_cast<uint8_t>(b));
      ASSERT_TRUE(store_->WriteBlock(b, buf.data()).ok());
    }
  }

  static constexpr int64_t kBlock = 128;
  std::unique_ptr<Env> env_;
  std::unique_ptr<BlockStore> store_;
};

TEST_F(BufferPoolTest, FetchLoadsFromStore) {
  BufferPool pool(1024);
  auto f = pool.Fetch(0, 7, kBlock, store_.get(), /*load=*/true);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ((*f)->data[0], 7);
  EXPECT_EQ(pool.stats().misses, 1);
  pool.Unpin(*f);
}

TEST_F(BufferPoolTest, SecondFetchHits) {
  BufferPool pool(1024);
  auto f1 = pool.Fetch(0, 3, kBlock, store_.get(), true);
  pool.Unpin(*f1);
  auto f2 = pool.Fetch(0, 3, kBlock, store_.get(), true);
  EXPECT_EQ(pool.stats().hits, 1);
  EXPECT_EQ(*f1, *f2);  // same frame
  pool.Unpin(*f2);
}

TEST_F(BufferPoolTest, CapTriggersLruEviction) {
  BufferPool pool(3 * kBlock);
  for (int64_t b = 0; b < 3; ++b) {
    auto f = pool.Fetch(0, b, kBlock, store_.get(), true);
    pool.Unpin(*f);
  }
  EXPECT_EQ(pool.used_bytes(), 3 * kBlock);
  auto f = pool.Fetch(0, 3, kBlock, store_.get(), true);
  pool.Unpin(*f);
  EXPECT_EQ(pool.stats().evictions, 1);
  EXPECT_EQ(pool.used_bytes(), 3 * kBlock);
  // Block 0 was least recently used; re-fetching it must miss.
  auto f0 = pool.Fetch(0, 0, kBlock, store_.get(), true);
  EXPECT_EQ(pool.stats().misses, 5);
  pool.Unpin(*f0);
}

TEST_F(BufferPoolTest, PinnedFramesAreNotEvicted) {
  BufferPool pool(2 * kBlock);
  auto pinned = pool.Fetch(0, 0, kBlock, store_.get(), true);
  auto f1 = pool.Fetch(0, 1, kBlock, store_.get(), true);
  pool.Unpin(*f1);
  // Fetching a third block must evict block 1, not the pinned block 0.
  auto f2 = pool.Fetch(0, 2, kBlock, store_.get(), true);
  pool.Unpin(*f2);
  EXPECT_EQ(pool.Probe(0, 0), *pinned);
  EXPECT_EQ(pool.Probe(0, 1), nullptr);
  pool.Unpin(*pinned);
}

TEST_F(BufferPoolTest, FetchReportsResidencyFreshEachCall) {
  // Regression: Fetch must write *was_resident for the iteration that
  // actually returns — a stale `true` from a prior call (or from a hit
  // iteration that waited and came back to a miss) would make a session
  // caller skip loading a zero-filled frame.
  BufferPool pool(1024);
  bool resident = true;  // deliberately stale
  auto f = pool.Fetch(0, 5, kBlock, store_.get(), /*load=*/true, &resident);
  ASSERT_TRUE(f.ok());
  EXPECT_FALSE(resident);
  pool.Unpin(*f);
  resident = false;
  auto f2 = pool.Fetch(0, 5, kBlock, store_.get(), /*load=*/true, &resident);
  ASSERT_TRUE(f2.ok());
  EXPECT_TRUE(resident);
  pool.Unpin(*f2);
}

TEST_F(BufferPoolTest, DetachAccountOrphansFramesSharedWithOtherTenants) {
  // Regression: a frame first-claimed by session A but still pinned by an
  // anonymous tenant when A's run ends must not keep pointing at A's
  // (stack-lifetime) account — releasing A's pin orphans the charge (the
  // survivor carries no account), and the later unpin must not touch the
  // detached account.
  BufferPool pool(1024);
  PoolAccount a;
  a.budget_bytes = 1024;
  auto f1 = pool.Fetch(0, 0, kBlock, store_.get(), /*load=*/true, nullptr,
                       &a);
  ASSERT_TRUE(f1.ok());
  EXPECT_EQ(a.charged_bytes.load(), kBlock);
  auto f2 = pool.Fetch(0, 0, kBlock, store_.get(), /*load=*/true);
  ASSERT_TRUE(f2.ok());   // second (anonymous) tenant, same frame
  pool.Unpin(*f1, &a);    // A's run ends; the frame stays required via f2
  EXPECT_EQ(a.charged_bytes.load(), 0);  // charge released with A's pin
  pool.DetachAccount(&a);
  EXPECT_EQ(a.charged_bytes.load(), 0);
  EXPECT_EQ(a.peak_charged_bytes.load(), kBlock);
  pool.Unpin(*f2);  // must not uncharge (or write) the detached account
  EXPECT_EQ(a.charged_bytes.load(), 0);
}

TEST_F(BufferPoolTest, SharedFrameChargeTransfersToSurvivingClaimant) {
  // The PR-4 approximation left the first claimant charged for a shared
  // frame until it stopped being required globally; now the charge follows
  // a surviving claimant when the first one lets go, so each tenant is
  // only ever charged for frames it itself holds.
  BufferPool pool(1024);
  PoolAccount a, b;
  a.budget_bytes = kBlock;  // exactly one block of budget each
  b.budget_bytes = kBlock;
  auto fa = pool.Fetch(0, 0, kBlock, store_.get(), /*load=*/true, nullptr,
                       &a);
  ASSERT_TRUE(fa.ok());
  auto fb = pool.Fetch(0, 0, kBlock, store_.get(), /*load=*/true, nullptr,
                       &b);
  ASSERT_TRUE(fb.ok());  // same frame, free for the second reader
  EXPECT_EQ(a.charged_bytes.load(), kBlock);
  EXPECT_EQ(b.charged_bytes.load(), 0);
  pool.Unpin(*fa, &a);  // A releases; B still pins -> charge moves to B
  EXPECT_EQ(a.charged_bytes.load(), 0);
  EXPECT_EQ(b.charged_bytes.load(), kBlock);
  // A's budget is fully free again: a fetch of another block must succeed
  // with zero rejections (the old accounting would have rejected here).
  auto fa2 = pool.Fetch(0, 1, kBlock, store_.get(), /*load=*/true, nullptr,
                        &a);
  ASSERT_TRUE(fa2.ok());
  EXPECT_EQ(a.budget_rejections.load(), 0);
  EXPECT_EQ(a.charged_bytes.load(), kBlock);
  EXPECT_LE(a.peak_charged_bytes.load(), a.budget_bytes);
  EXPECT_LE(b.peak_charged_bytes.load(), b.budget_bytes);
  pool.Unpin(*fa2, &a);
  pool.Unpin(*fb, &b);
  EXPECT_EQ(b.charged_bytes.load(), 0);
}

TEST_F(BufferPoolTest, ChargeTransfersToRetentionOwnerOnUnpin) {
  // A claimant that holds the frame only via a retention (pins released,
  // keep-until-reuse still active) is a valid transfer target.
  BufferPool pool(1024);
  PoolAccount a, b;
  a.budget_bytes = 1024;
  b.budget_bytes = 1024;
  auto fb = pool.Fetch(0, 0, kBlock, store_.get(), /*load=*/true, nullptr,
                       &b);
  ASSERT_TRUE(fb.ok());
  pool.Retain(*fb, /*until_group=*/5, &b);
  pool.Unpin(*fb, &b);  // B holds via retention only; stays charged
  EXPECT_EQ(b.charged_bytes.load(), kBlock);
  auto fa = pool.Fetch(0, 0, kBlock, store_.get(), /*load=*/true, nullptr,
                       &a);
  ASSERT_TRUE(fa.ok());
  EXPECT_EQ(a.charged_bytes.load(), 0);  // B already pays
  pool.ReleaseRetainedBefore(/*group=*/6, &b);  // B's claim ends
  EXPECT_EQ(b.charged_bytes.load(), 0);
  EXPECT_EQ(a.charged_bytes.load(), kBlock);  // transferred to A's pin
  pool.Unpin(*fa, &a);
  EXPECT_EQ(a.charged_bytes.load(), 0);
}

TEST_F(BufferPoolTest, AllPinnedExhaustsPool) {
  BufferPool pool(2 * kBlock);
  auto a = pool.Fetch(0, 0, kBlock, store_.get(), true);
  auto b = pool.Fetch(0, 1, kBlock, store_.get(), true);
  auto c = pool.Fetch(0, 2, kBlock, store_.get(), true);
  EXPECT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kResourceExhausted);
  pool.Unpin(*a);
  pool.Unpin(*b);
}

TEST_F(BufferPoolTest, RetainedFramesSurviveEviction) {
  BufferPool pool(2 * kBlock);
  auto a = pool.Fetch(0, 0, kBlock, store_.get(), true);
  pool.Retain(*a, /*until_group=*/5);
  pool.Unpin(*a);
  auto b = pool.Fetch(0, 1, kBlock, store_.get(), true);
  pool.Unpin(*b);
  auto c = pool.Fetch(0, 2, kBlock, store_.get(), true);  // evicts 1, not 0
  pool.Unpin(*c);
  EXPECT_NE(pool.Probe(0, 0), nullptr);
  EXPECT_EQ(pool.Probe(0, 1), nullptr);
  // After the retention expires it becomes evictable.
  pool.ReleaseRetainedBefore(/*group=*/6);
  auto d = pool.Fetch(0, 3, kBlock, store_.get(), true);
  pool.Unpin(*d);
  EXPECT_EQ(pool.Probe(0, 0), nullptr);
}

TEST_F(BufferPoolTest, ReleaseRespectsGroupBoundary) {
  BufferPool pool(8 * kBlock);
  auto a = pool.Fetch(0, 0, kBlock, store_.get(), true);
  pool.Retain(*a, 5);
  pool.Unpin(*a);
  pool.ReleaseRetainedBefore(5);  // group 5 not finished yet
  EXPECT_GE((*a)->retain_until_group(), 0);
  pool.ReleaseRetainedBefore(6);
  EXPECT_EQ((*a)->retain_until_group(), -1);
}

TEST_F(BufferPoolTest, DirtyEvictionWritesBack) {
  BufferPool pool(1 * kBlock);
  auto a = pool.Fetch(0, 9, kBlock, store_.get(), true);
  (*a)->data[0] = 0xEE;
  (*a)->dirty = true;
  pool.Unpin(*a);
  auto b = pool.Fetch(0, 10, kBlock, store_.get(), true);  // evicts 9
  pool.Unpin(*b);
  EXPECT_EQ(pool.stats().dirty_writebacks, 1);
  std::vector<uint8_t> buf(kBlock);
  ASSERT_TRUE(store_->ReadBlock(9, buf.data()).ok());
  EXPECT_EQ(buf[0], 0xEE);
}

TEST_F(BufferPoolTest, PinnedOrRetainedBytes) {
  BufferPool pool(8 * kBlock);
  auto a = pool.Fetch(0, 0, kBlock, store_.get(), true);   // pinned
  auto b = pool.Fetch(0, 1, kBlock, store_.get(), true);
  pool.Retain(*b, 3);
  pool.Unpin(*b);                                          // retained only
  auto c = pool.Fetch(0, 2, kBlock, store_.get(), true);
  pool.Unpin(*c);                                          // neither
  EXPECT_EQ(pool.PinnedOrRetainedBytes(), 2 * kBlock);
  EXPECT_EQ(pool.used_bytes(), 3 * kBlock);
  pool.Unpin(*a);
}

TEST_F(BufferPoolTest, FlushAllWritesDirtyAndClears) {
  BufferPool pool(4 * kBlock);
  auto a = pool.Fetch(0, 4, kBlock, store_.get(), true);
  (*a)->data[0] = 0x77;
  (*a)->dirty = true;
  pool.Unpin(*a);
  ASSERT_TRUE(pool.FlushAll().ok());
  EXPECT_EQ(pool.used_bytes(), 0);
  std::vector<uint8_t> buf(kBlock);
  ASSERT_TRUE(store_->ReadBlock(4, buf.data()).ok());
  EXPECT_EQ(buf[0], 0x77);
}

TEST_F(BufferPoolTest, FrameBuffersAreCacheLineAligned) {
  // The packed SIMD kernels view frame payloads as double matrices and the
  // executor DCHECKs this contract on every view it builds: every frame
  // buffer the pool hands out must start on a 64-byte boundary, across
  // evictions and re-fetches.
  static_assert(kFrameAlignment == 64, "kernel alignment contract");
  BufferPool pool(8 * kBlock);
  for (int64_t b = 0; b < 32; ++b) {  // > cap: forces eviction/realloc churn
    auto f = pool.Fetch(0, b % 64, kBlock, store_.get(), /*load=*/true);
    ASSERT_TRUE(f.ok());
    EXPECT_TRUE(IsAligned((*f)->data.data()))
        << "frame for block " << b << " at " << (*f)->data.data();
    pool.Unpin(*f);
  }
}

TEST_F(BufferPoolTest, FetchWithoutLoadZeroes) {
  BufferPool pool(4 * kBlock);
  auto a = pool.Fetch(0, 0, kBlock, store_.get(), /*load=*/false);
  EXPECT_EQ((*a)->data[0], 0);
  pool.Unpin(*a);
}

}  // namespace
}  // namespace riot
