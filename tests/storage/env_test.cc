#include "storage/env.h"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>

namespace riot {
namespace {

void RoundTrip(Env* env, const std::string& path) {
  auto file = env->OpenFile(path, /*create=*/true);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  const char msg[] = "hello block storage";
  ASSERT_TRUE((*file)->Write(100, sizeof(msg), msg).ok());
  char buf[sizeof(msg)] = {};
  ASSERT_TRUE((*file)->Read(100, sizeof(msg), buf).ok());
  EXPECT_STREQ(buf, msg);
  auto size = (*file)->Size();
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 100 + sizeof(msg));
}

TEST(MemEnvTest, ReadWriteRoundTrip) {
  auto env = NewMemEnv();
  RoundTrip(env.get(), "/x/y");
  EXPECT_TRUE(env->FileExists("/x/y"));
  EXPECT_FALSE(env->FileExists("/x/z"));
  EXPECT_TRUE(env->DeleteFile("/x/y").ok());
  EXPECT_FALSE(env->FileExists("/x/y"));
}

TEST(MemEnvTest, OpenMissingWithoutCreateFails) {
  auto env = NewMemEnv();
  auto f = env->OpenFile("/missing", /*create=*/false);
  EXPECT_FALSE(f.ok());
  EXPECT_EQ(f.status().code(), StatusCode::kNotFound);
}

TEST(MemEnvTest, ReadPastEndFails) {
  auto env = NewMemEnv();
  auto f = env->OpenFile("/f", true);
  char b[16];
  EXPECT_FALSE((*f)->Read(0, 16, b).ok());
}

TEST(MemEnvTest, StatsCountBytesAndOps) {
  auto env = NewMemEnv();
  auto f = env->OpenFile("/f", true);
  char buf[64] = {};
  ASSERT_TRUE((*f)->Write(0, 64, buf).ok());
  ASSERT_TRUE((*f)->Read(0, 32, buf).ok());
  EXPECT_EQ(env->stats().bytes_written.load(), 64);
  EXPECT_EQ(env->stats().bytes_read.load(), 32);
  EXPECT_EQ(env->stats().write_ops.load(), 1);
  EXPECT_EQ(env->stats().read_ops.load(), 1);
  env->stats().Reset();
  EXPECT_EQ(env->stats().bytes_written.load(), 0);
}

TEST(PosixEnvTest, ReadWriteRoundTrip) {
  auto env = NewPosixEnv();
  std::string path =
      (std::filesystem::temp_directory_path() / "riot_env_test.bin").string();
  env->DeleteFile(path).CheckOK();
  RoundTrip(env.get(), path);
  EXPECT_TRUE(env->FileExists(path));
  EXPECT_TRUE(env->DeleteFile(path).ok());
}

TEST(ThrottledEnvTest, AccruesModeledSeconds) {
  auto mem = NewMemEnv();
  // 1 MB/s read, 0.5 MB/s write, no per-request overhead.
  auto env = NewThrottledEnv(mem.get(), 1.0, 0.5, 0.0);
  auto f = env->OpenFile("/f", true);
  std::vector<char> mb(1000000);
  ASSERT_TRUE((*f)->Write(0, mb.size(), mb.data()).ok());
  ASSERT_TRUE((*f)->Read(0, mb.size(), mb.data()).ok());
  // 1 MB write at 0.5 MB/s = 2 s; 1 MB read at 1 MB/s = 1 s.
  EXPECT_NEAR(env->stats().modeled_seconds(), 3.0, 1e-9);
}

TEST(ThrottledEnvTest, PerRequestOverhead) {
  auto mem = NewMemEnv();
  auto env = NewThrottledEnv(mem.get(), 1e9, 1e9, /*per_request_ms=*/10.0);
  auto f = env->OpenFile("/f", true);
  char b[8] = {};
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*f)->Write(0, 8, b).ok());
  }
  EXPECT_NEAR(env->stats().modeled_seconds(), 0.05, 1e-6);
}

TEST(IoStatsTest, ModelSecondsUsesPaperRates) {
  IoStats s;
  s.bytes_read = 96 * 1000000;   // 1 second at 96 MB/s
  s.bytes_written = 60 * 1000000;  // 1 second at 60 MB/s
  EXPECT_NEAR(s.ModelSeconds(96.0, 60.0), 2.0, 1e-9);
}

}  // namespace
}  // namespace riot
