// IoPool: async block reads complete with the right data, errors surface
// through the completion status, and outstanding bookkeeping drains.
#include "storage/io_pool.h"

#include <gtest/gtest.h>

#include <vector>

namespace riot {
namespace {

TEST(IoPoolTest, ReadsCompleteWithCorrectData) {
  auto env = NewMemEnv();
  const int64_t kBlock = 64;
  auto store = OpenDaf(env.get(), "/s", kBlock, 16);
  ASSERT_TRUE(store.ok());
  std::vector<uint8_t> buf(kBlock);
  for (int64_t b = 0; b < 16; ++b) {
    std::fill(buf.begin(), buf.end(), static_cast<uint8_t>(b + 1));
    ASSERT_TRUE((*store)->WriteBlock(b, buf.data()).ok());
  }

  IoPool pool(2);
  std::vector<std::vector<uint8_t>> bufs(16,
                                         std::vector<uint8_t>(kBlock, 0));
  for (uint64_t b = 0; b < 16; ++b) {
    pool.ReadBlockAsync(store->get(), static_cast<int64_t>(b),
                        bufs[b].data(), /*tag=*/b);
  }
  std::vector<bool> seen(16, false);
  for (int i = 0; i < 16; ++i) {
    IoPool::Completion c = pool.WaitCompletion();
    ASSERT_TRUE(c.status.ok()) << c.status.ToString();
    ASSERT_LT(c.tag, 16u);
    EXPECT_FALSE(seen[c.tag]);
    seen[c.tag] = true;
    EXPECT_EQ(bufs[c.tag][0], static_cast<uint8_t>(c.tag + 1));
    EXPECT_EQ(bufs[c.tag][kBlock - 1], static_cast<uint8_t>(c.tag + 1));
  }
  EXPECT_EQ(pool.outstanding(), 0);
  EXPECT_EQ(pool.reads_completed(), 16);
  EXPECT_GE(pool.read_seconds(), 0.0);
}

TEST(IoPoolTest, ErrorsSurfaceInCompletionStatus) {
  auto env = NewMemEnv();
  auto store = OpenDaf(env.get(), "/s", 64, 4);
  ASSERT_TRUE(store.ok());
  std::vector<uint8_t> buf(64);
  IoPool pool(1);
  pool.ReadBlockAsync(store->get(), /*block=*/99, buf.data(), /*tag=*/7);
  IoPool::Completion c = pool.WaitCompletion();
  EXPECT_FALSE(c.status.ok());
  EXPECT_EQ(c.tag, 7u);
}

TEST(IoPoolTest, DestructorDrainsInflightReads) {
  auto env = NewMemEnv();
  const int64_t kBlock = 1 << 16;
  auto store = OpenDaf(env.get(), "/s", kBlock, 8);
  ASSERT_TRUE(store.ok());
  std::vector<uint8_t> buf(kBlock, 1);
  for (int64_t b = 0; b < 8; ++b) {
    ASSERT_TRUE((*store)->WriteBlock(b, buf.data()).ok());
  }
  std::vector<std::vector<uint8_t>> bufs(8, std::vector<uint8_t>(kBlock));
  {
    IoPool pool(2);
    for (uint64_t b = 0; b < 8; ++b) {
      pool.ReadBlockAsync(store->get(), static_cast<int64_t>(b),
                          bufs[b].data(), b);
    }
    // Destroyed with completions unconsumed: the pool must finish the
    // reads (buffers stay owned here) and join cleanly.
  }
  for (const auto& bb : bufs) EXPECT_EQ(bb[0], 1);
}

}  // namespace
}  // namespace riot
