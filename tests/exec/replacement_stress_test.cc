// Replacement-policy soak on a real workload (stress-labeled; the CI ASan
// leg runs it with replacement=opt instrumented): the 2mm program executes
// under the opportunistic-cache ablation across policies and shrinking
// caps. Every configuration must produce bit-for-bit the serial reference
// outputs, match the cache simulator's predicted reads/evictions exactly,
// and respect the Belady ordering — ScheduleOpt never reads more than LRU
// at any cap, and strictly fewer somewhere below the working set.
#include <gtest/gtest.h>

#include <map>

#include "core/cost_model.h"
#include "exec/executor.h"
#include "exec/verify.h"
#include "ops/runtime.h"
#include "ops/workload.h"
#include "storage/env.h"

namespace riot {
namespace {

TEST(ReplacementStressTest, PolicyCapSweepExactAndBeladyOrdered) {
  Workload w = MakeTwoMatMul(TwoMatMulConfig::kConfigA, /*scale=*/500);
  auto env = NewMemEnv();

  // Serial plan-exact reference outputs.
  auto ref_rt = OpenStores(env.get(), w.program, "/ref");
  ASSERT_TRUE(ref_rt.ok());
  ASSERT_TRUE(InitInputs(w, *ref_rt, 33).ok());
  {
    Executor ex(w.program, ref_rt->raw(), w.kernels);
    auto st = ex.Run(w.program.original_schedule(), {});
    ASSERT_TRUE(st.ok()) << st.status().ToString();
  }

  // The ablation's working set: with an effectively unbounded cache every
  // block is read once; caps below total_bytes create pressure.
  const PlanCost unshared =
      EvaluatePlanCost(w.program, w.program.original_schedule(), {});
  int64_t total_bytes = 0;
  for (size_t a = 0; a < w.program.arrays().size(); ++a) {
    total_bytes += w.program.array(static_cast<int>(a)).BlockBytes() *
                   w.program.array(static_cast<int>(a)).NumBlocks();
  }
  ASSERT_GT(total_bytes, 0);
  ASSERT_GT(unshared.peak_memory_bytes, 0);

  bool opt_strictly_better_somewhere = false;
  int run_idx = 0;
  for (const int64_t cap :
       {total_bytes, total_bytes / 2, total_bytes / 4, total_bytes / 8}) {
    if (cap < unshared.peak_memory_bytes) continue;  // below instance needs
    std::map<ReplacementKind, int64_t> reads;
    for (const ReplacementKind kind :
         {ReplacementKind::kLru, ReplacementKind::kClock,
          ReplacementKind::kScheduleOpt}) {
      SCOPED_TRACE("cap " + std::to_string(cap) + " policy " +
                   ReplacementKindName(kind));
      auto rt = OpenStores(env.get(), w.program,
                           "/r" + std::to_string(run_idx++));
      ASSERT_TRUE(rt.ok());
      ASSERT_TRUE(InitInputs(w, *rt, 33).ok());
      ExecOptions eo;
      eo.mode = ExecMode::kOpportunisticCache;
      eo.memory_cap_bytes = cap;
      eo.replacement = kind;
      Executor ex(w.program, rt->raw(), w.kernels, eo);
      auto stats = ex.Run(w.program.original_schedule(), {});
      ASSERT_TRUE(stats.ok()) << stats.status().ToString();
      reads[kind] = stats->block_reads;

      // The cost model's cache simulator must predict this run exactly.
      CacheSimOptions sim;
      sim.policy = kind;
      sim.cap_bytes = cap;
      sim.opportunistic = true;
      auto predicted = SimulateCacheBehavior(
          w.program, w.program.original_schedule(), {}, sim);
      ASSERT_TRUE(predicted.ok()) << predicted.status().ToString();
      EXPECT_EQ(predicted->block_reads, stats->block_reads);
      EXPECT_EQ(predicted->block_writes, stats->block_writes);
      EXPECT_EQ(predicted->evictions, stats->pool.evictions);
      EXPECT_EQ(predicted->hits, stats->pool.hits);
      EXPECT_EQ(predicted->misses, stats->pool.misses);
      EXPECT_EQ(predicted->policy_saved_reads, stats->policy_saved_reads);

      // Same math under every policy and cap.
      for (int arr : w.output_arrays) {
        const ArrayInfo& info = w.program.array(arr);
        auto d = MaxAbsDifference(
            info, ref_rt->stores[static_cast<size_t>(arr)].get(),
            rt->stores[static_cast<size_t>(arr)].get());
        ASSERT_TRUE(d.ok());
        EXPECT_EQ(*d, 0.0) << info.name;
      }
    }
    EXPECT_LE(reads[ReplacementKind::kScheduleOpt],
              reads[ReplacementKind::kLru])
        << "Belady lost to LRU at cap " << cap;
    if (cap < total_bytes &&
        reads[ReplacementKind::kScheduleOpt] <
            reads[ReplacementKind::kLru]) {
      opt_strictly_better_somewhere = true;
    }
  }
  EXPECT_TRUE(opt_strictly_better_somewhere)
      << "no cap below the working set showed an OPT-vs-LRU read gap";
}

}  // namespace
}  // namespace riot
