// The prefetching pipeline (ExecOptions::pipeline_depth) must change
// *when* disk reads happen, never *what* the plan does: identical I/O
// counts, identical results, identical memory requirement, no spills —
// while wall time drops below io + compute once reads overlap kernels.
#include <gtest/gtest.h>

#include <chrono>

#include "analysis/coaccess.h"
#include "core/cost_model.h"
#include "core/schedule_solver.h"
#include "exec/executor.h"
#include "exec/verify.h"
#include "ops/runtime.h"
#include "ops/workload.h"
#include "storage/env.h"

namespace riot {
namespace {

const CoAccess* Find(const std::vector<CoAccess>& list, const Program& p,
                     const std::string& label) {
  for (const auto& ca : list) {
    if (ca.Label(p) == label) return &ca;
  }
  return nullptr;
}

ExecStats MustRun(const Workload& w, Env* env, const std::string& dir,
                  const Schedule& sched, const std::vector<const CoAccess*>& q,
                  ExecOptions opts, Runtime* rt_out = nullptr,
                  StorageFormat format = StorageFormat::kDaf) {
  auto rt = OpenStores(env, w.program, dir, format);
  rt.status().CheckOK();
  InitInputs(w, *rt, /*seed=*/7).CheckOK();
  Executor ex(w.program, rt->raw(), w.kernels, opts);
  auto stats = ex.Run(sched, q);
  stats.status().CheckOK();
  if (rt_out != nullptr) *rt_out = std::move(rt).ValueOrDie();
  return *stats;
}

TEST(PipelineTest, DepthZeroMatchesCostModelExactly) {
  // The synchronous degradation: I/O counts and peak memory must equal the
  // cost model's static prediction, as they always have.
  Workload w = MakeTwoMatMul(TwoMatMulConfig::kConfigA, /*scale=*/1000);
  auto env = NewMemEnv();
  PlanCost predicted =
      EvaluatePlanCost(w.program, w.program.original_schedule(), {});
  ExecOptions opts;
  opts.pipeline_depth = 0;
  ExecStats s = MustRun(w, env.get(), "/d0", w.program.original_schedule(),
                        {}, opts);
  EXPECT_EQ(s.bytes_read, predicted.read_bytes);
  EXPECT_EQ(s.bytes_written, predicted.write_bytes);
  EXPECT_EQ(s.peak_required_bytes, predicted.peak_memory_bytes);
  EXPECT_EQ(s.prefetch_hits, 0);
  EXPECT_EQ(s.prefetch_wasted, 0);
  EXPECT_EQ(s.pool.prefetch_issued, 0);
}

TEST(PipelineTest, PipelinedPreservesIoCountsAndResults) {
  Workload w = MakeTwoMatMul(TwoMatMulConfig::kConfigA, /*scale=*/1000);
  auto env = NewMemEnv();
  ExecOptions sync_opts;
  Runtime rt0;
  ExecStats s0 = MustRun(w, env.get(), "/sync", w.program.original_schedule(),
                         {}, sync_opts, &rt0);

  for (int depth : {1, 2, 4}) {
    ExecOptions opts;
    opts.pipeline_depth = depth;
    Runtime rt1;
    ExecStats s1 =
        MustRun(w, env.get(), "/p" + std::to_string(depth),
                w.program.original_schedule(), {}, opts, &rt1);
    // Same plan, same I/O — only the timing moved.
    EXPECT_EQ(s1.bytes_read, s0.bytes_read) << "depth " << depth;
    EXPECT_EQ(s1.bytes_written, s0.bytes_written) << "depth " << depth;
    EXPECT_EQ(s1.block_reads, s0.block_reads) << "depth " << depth;
    EXPECT_EQ(s1.block_writes, s0.block_writes) << "depth " << depth;
    EXPECT_EQ(s1.peak_required_bytes, s0.peak_required_bytes)
        << "depth " << depth;
    EXPECT_GT(s1.prefetch_hits, 0) << "depth " << depth;
    EXPECT_EQ(s1.prefetch_wasted, 0) << "depth " << depth;
    EXPECT_EQ(s1.pool.dirty_writebacks, 0) << "depth " << depth;
    for (int arr : w.output_arrays) {
      const ArrayInfo& info = w.program.array(arr);
      auto d = MaxAbsDifference(info, rt0.stores[size_t(arr)].get(),
                                rt1.stores[size_t(arr)].get());
      ASSERT_TRUE(d.ok());
      EXPECT_EQ(*d, 0.0) << "depth " << depth << " array " << info.name;
    }
  }
}

TEST(PipelineTest, SharedPlanSemanticsUnchangedUnderPipeline) {
  // strict_sharing + kPlanExact with realized opportunities: the pipeline
  // must not disturb saved reads (served from retained memory), W->W saves,
  // or write elision.
  Workload w = MakeExample1(2, 3, 1);
  AnalysisResult a = AnalyzeProgram(w.program);
  ScheduleSolver solver(w.program, a.dependences);
  std::vector<const CoAccess*> q = {
      Find(a.sharing, w.program, "s1WC->s2RC"),
      Find(a.sharing, w.program, "s2WE->s2RE"),
      Find(a.sharing, w.program, "s2WE->s2WE")};
  for (auto* o : q) ASSERT_NE(o, nullptr);
  auto s = solver.FindSchedule(q);
  ASSERT_TRUE(s.has_value());

  auto env = NewMemEnv();
  const int64_t blk = w.program.array(0).BlockBytes();
  for (int depth : {0, 2}) {
    ExecOptions opts;
    opts.pipeline_depth = depth;
    ASSERT_TRUE(opts.strict_sharing);
    ExecStats st = MustRun(w, env.get(), "/sh" + std::to_string(depth), *s,
                           q, opts);
    // C never touches disk (n3 = 1, fully pipelined); E written once per
    // block; reads only A, B, D — identical at every depth.
    EXPECT_EQ(st.bytes_read, (2 * 2 * 3 + 3 * 1 * 2) * blk) << depth;
    EXPECT_EQ(st.bytes_written, 2 * 1 * blk) << depth;
    EXPECT_EQ(st.pool.dirty_writebacks, 0) << depth;
  }
}

TEST(PipelineTest, PipelinedLabTreeStoresStaySerialized) {
  // LAB-tree stores mutate their node cache even on reads, so worker
  // prefetch reads and the consumer's synchronous writes on the same
  // store must be serialized through the per-store lock. Wrong data or a
  // crash here means the serialization broke.
  Workload w = MakeTwoMatMul(TwoMatMulConfig::kConfigA, /*scale=*/1000);
  auto env = NewMemEnv();
  Runtime rt0;
  ExecStats s0 = MustRun(w, env.get(), "/lt0", w.program.original_schedule(),
                         {}, ExecOptions{}, &rt0, StorageFormat::kLabTree);
  ExecOptions opts;
  opts.pipeline_depth = 2;
  opts.io_threads = 2;
  Runtime rt1;
  ExecStats s1 = MustRun(w, env.get(), "/lt1", w.program.original_schedule(),
                         {}, opts, &rt1, StorageFormat::kLabTree);
  EXPECT_EQ(s1.bytes_read, s0.bytes_read);
  EXPECT_EQ(s1.bytes_written, s0.bytes_written);
  EXPECT_GT(s1.prefetch_hits, 0);
  for (int arr : w.output_arrays) {
    const ArrayInfo& info = w.program.array(arr);
    auto d = MaxAbsDifference(info, rt0.stores[size_t(arr)].get(),
                              rt1.stores[size_t(arr)].get());
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(*d, 0.0) << info.name;
  }
}

TEST(PipelineTest, PrefetchRespectsMemoryCapOfInCapPlan) {
  // Run the best plan at exactly its predicted memory requirement: the
  // lookahead must decline rather than evict what the plan needs or spill.
  Workload w = MakeExample1(3, 3, 2);
  AnalysisResult a = AnalyzeProgram(w.program);
  ScheduleSolver solver(w.program, a.dependences);
  std::vector<const CoAccess*> q = {Find(a.sharing, w.program, "s1WC->s2RC")};
  ASSERT_NE(q[0], nullptr);
  auto s = solver.FindSchedule(q);
  ASSERT_TRUE(s.has_value());
  PlanCost cost = EvaluatePlanCost(w.program, *s, q);

  auto env = NewMemEnv();
  ExecOptions opts;
  opts.memory_cap_bytes = cost.peak_memory_bytes;
  opts.pipeline_depth = 2;
  ExecStats st = MustRun(w, env.get(), "/cap", *s, q, opts);
  EXPECT_EQ(st.bytes_read, cost.read_bytes);
  EXPECT_EQ(st.bytes_written, cost.write_bytes);
  EXPECT_EQ(st.peak_required_bytes, cost.peak_memory_bytes);
  EXPECT_EQ(st.pool.dirty_writebacks, 0);
}

TEST(PipelineTest, OverlapsComputeWithIoOn2mm) {
  // The acceptance criterion: against a ThrottledEnv that physically
  // blocks, the pipelined 2mm run finishes in less wall time than
  // io + compute — disk time hidden behind kernel time.
  Workload w = MakeTwoMatMul(TwoMatMulConfig::kConfigA, /*scale=*/1000);
  // Give the kernels measurable compute (the scaled blocks are tiny).
  for (auto& kernel : w.kernels) {
    StatementKernel inner = kernel;
    kernel = [inner](const std::vector<int64_t>& iter,
                     const std::vector<DenseView*>& views) {
      inner(iter, views);
      auto t0 = std::chrono::steady_clock::now();
      volatile double sink = 0.0;
      while (std::chrono::duration<double>(
                 std::chrono::steady_clock::now() - t0)
                 .count() < 300e-6) {
        sink = sink + 1.0;
      }
    };
  }
  auto mem = NewMemEnv();
  // Negligible byte rate term, 0.15 ms per request, physically slept.
  auto disk = NewThrottledEnv(mem.get(), /*read=*/1e6, /*write=*/1e6,
                              /*per_request_ms=*/0.15, /*sleep_scale=*/1.0);

  ExecOptions sync_opts;
  ExecStats s0 = MustRun(w, disk.get(), "/ov0",
                         w.program.original_schedule(), {}, sync_opts);
  ExecOptions pipe_opts;
  pipe_opts.pipeline_depth = 2;
  ExecStats s1 = MustRun(w, disk.get(), "/ov1",
                         w.program.original_schedule(), {}, pipe_opts);

  std::printf("s0 wall=%.3f io=%.3f cpu=%.3f | s1 wall=%.3f io=%.3f "
              "cpu=%.3f hits=%lld wasted=%lld issued=%lld declined=%lld "
              "reads=%lld\n",
              s0.wall_seconds, s0.io_seconds, s0.compute_seconds,
              s1.wall_seconds, s1.io_seconds, s1.compute_seconds,
              (long long)s1.prefetch_hits, (long long)s1.prefetch_wasted,
              (long long)s1.pool.prefetch_issued,
              (long long)s1.pool.prefetch_declined,
              (long long)s1.block_reads);
  // Synchronous: io and compute strictly add (allow small scheduling
  // slack). Pipelined: wall beats io + compute by a real margin.
  EXPECT_GE(s0.wall_seconds, s0.io_seconds + s0.compute_seconds - 0.02);
  EXPECT_GT(s1.prefetch_hits, 0);
#ifdef RIOT_SANITIZED
  // Sanitizer instrumentation erodes fixed wall-clock margins — the
  // overlap/compute second counters race the inflated wall clock on a
  // 1-core host, and overlap_seconds can legitimately land under 50 ms
  // even though the ~1.4k prefetched reads really did sleep while kernels
  // ran. Assert the order-robust consequence instead: with identical I/O
  // and identical kernels, only overlap can make the pipelined run beat
  // the synchronous one, and the physically-slept prefetch time keeps the
  // gap well clear of scheduler noise even when both walls are inflated.
  EXPECT_LT(s1.wall_seconds, s0.wall_seconds - 0.05);
#else
  EXPECT_LT(s1.wall_seconds,
            s1.io_seconds + s1.compute_seconds - 0.05);
  EXPECT_GT(s1.overlap_seconds, 0.05);
#endif
  // Same I/O either way.
  EXPECT_EQ(s1.bytes_read, s0.bytes_read);
  EXPECT_EQ(s1.bytes_written, s0.bytes_written);
}

// ---------------------------------------------------------------------------
// Parallel kernel dispatch (ExecOptions::exec_threads): every thread/depth
// configuration must reproduce the serial engine's stored outputs exactly.
// ---------------------------------------------------------------------------

TEST(ParallelExecTest, MatchesSerialAcrossThreadDepthMatrix) {
  Workload w = MakeTwoMatMul(TwoMatMulConfig::kConfigA, /*scale=*/1000);
  auto env = NewMemEnv();
  Runtime rt0;
  ExecStats s0 = MustRun(w, env.get(), "/pm0", w.program.original_schedule(),
                         {}, ExecOptions{}, &rt0);
  for (int threads : {2, 4}) {
    for (int depth : {0, 2}) {
      ExecOptions opts;
      opts.exec_threads = threads;
      opts.pipeline_depth = depth;
      Runtime rt1;
      ExecStats s1 = MustRun(
          w, env.get(),
          "/pm_t" + std::to_string(threads) + "d" + std::to_string(depth),
          w.program.original_schedule(), {}, opts, &rt1);
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " depth=" + std::to_string(depth));
      // Writes are plan-exact in every mode; reads may come in under the
      // serial count (residency dedupe), never over.
      EXPECT_EQ(s1.bytes_written, s0.bytes_written);
      EXPECT_EQ(s1.block_writes, s0.block_writes);
      EXPECT_LE(s1.block_reads, s0.block_reads);
      EXPECT_GT(s1.block_reads, 0);
      EXPECT_EQ(s1.pool.dirty_writebacks, 0);
      EXPECT_GT(s1.parallel_groups, 0);
      EXPECT_GT(s1.max_ready_width, 1);
      for (int arr : w.output_arrays) {
        const ArrayInfo& info = w.program.array(arr);
        auto d = MaxAbsDifference(info, rt0.stores[size_t(arr)].get(),
                                  rt1.stores[size_t(arr)].get());
        ASSERT_TRUE(d.ok());
        EXPECT_EQ(*d, 0.0) << "array " << info.name;
      }
    }
  }
}

TEST(ParallelExecTest, SharedPlanSemanticsPreservedUnderThreads) {
  // Saved reads, W->W saves, and write elision must survive parallel
  // dispatch: the DAG's materializer edges order every consumer after the
  // access that retained its block.
  Workload w = MakeExample1(2, 3, 1);
  AnalysisResult a = AnalyzeProgram(w.program);
  ScheduleSolver solver(w.program, a.dependences);
  std::vector<const CoAccess*> q = {
      Find(a.sharing, w.program, "s1WC->s2RC"),
      Find(a.sharing, w.program, "s2WE->s2RE"),
      Find(a.sharing, w.program, "s2WE->s2WE")};
  for (auto* o : q) ASSERT_NE(o, nullptr);
  auto s = solver.FindSchedule(q);
  ASSERT_TRUE(s.has_value());

  auto env = NewMemEnv();
  Runtime rt0;
  ExecStats s0 = MustRun(w, env.get(), "/sp0", *s, q, ExecOptions{}, &rt0);
  for (int threads : {2, 4}) {
    ExecOptions opts;
    opts.exec_threads = threads;
    opts.pipeline_depth = 2;
    ASSERT_TRUE(opts.strict_sharing);
    Runtime rt1;
    ExecStats s1 = MustRun(w, env.get(), "/sp" + std::to_string(threads), *s,
                           q, opts, &rt1);
    // Elided/saved writes stay elided: written bytes match the plan.
    EXPECT_EQ(s1.bytes_written, s0.bytes_written) << threads;
    EXPECT_EQ(s1.pool.dirty_writebacks, 0) << threads;
    for (int arr : w.output_arrays) {
      const ArrayInfo& info = w.program.array(arr);
      auto d = MaxAbsDifference(info, rt0.stores[size_t(arr)].get(),
                                rt1.stores[size_t(arr)].get());
      ASSERT_TRUE(d.ok());
      EXPECT_EQ(*d, 0.0) << "threads " << threads << " array " << info.name;
    }
  }
}

TEST(ParallelExecTest, LabTreeStoresStaySerializedUnderThreads) {
  // Kernel workers + prefetch workers + LAB-tree's non-thread-safe node
  // cache: every store call must flow through the shared per-store mutex.
  Workload w = MakeTwoMatMul(TwoMatMulConfig::kConfigA, /*scale=*/1000);
  auto env = NewMemEnv();
  Runtime rt0;
  ExecStats s0 = MustRun(w, env.get(), "/plt0", w.program.original_schedule(),
                         {}, ExecOptions{}, &rt0, StorageFormat::kLabTree);
  ExecOptions opts;
  opts.exec_threads = 4;
  opts.pipeline_depth = 2;
  opts.io_threads = 2;
  Runtime rt1;
  ExecStats s1 = MustRun(w, env.get(), "/plt1", w.program.original_schedule(),
                         {}, opts, &rt1, StorageFormat::kLabTree);
  EXPECT_EQ(s1.bytes_written, s0.bytes_written);
  for (int arr : w.output_arrays) {
    const ArrayInfo& info = w.program.array(arr);
    auto d = MaxAbsDifference(info, rt0.stores[size_t(arr)].get(),
                              rt1.stores[size_t(arr)].get());
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(*d, 0.0) << info.name;
  }
}

TEST(ParallelExecTest, SharedPoolEndsCleanOnSuccess) {
  // The shared_pool contract: a completed run leaves no pins and no
  // retentions, only clean evictable cache.
  Workload w = MakeExample1(3, 3, 2);
  auto env = NewMemEnv();
  auto rt = OpenStores(env.get(), w.program, "/spool");
  rt.status().CheckOK();
  InitInputs(w, *rt, /*seed=*/7).CheckOK();
  BufferPool pool(int64_t{1} << 30);
  ExecOptions opts;
  opts.exec_threads = 4;
  opts.pipeline_depth = 2;
  opts.shared_pool = &pool;
  Executor ex(w.program, rt->raw(), w.kernels, opts);
  auto stats = ex.Run(w.program.original_schedule(), {});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(pool.PinnedFrames(), 0);
  EXPECT_EQ(pool.PinnedOrRetainedBytes(), 0);
  // A second run against the now-warm shared pool must still be correct
  // (frames left behind are clean cache, never stale).
  auto stats2 = ex.Run(w.program.original_schedule(), {});
  ASSERT_TRUE(stats2.ok()) << stats2.status().ToString();
  EXPECT_EQ(pool.PinnedFrames(), 0);
}

TEST(ParallelExecTest, DivergentWriteFramesDroppedFromSharedPool) {
  // A plan with elided writes finishes with frames whose contents never
  // reached disk (the paper's footnote-8 temporaries). Such frames must
  // not survive the run as "clean cache" in a shared pool: a later run's
  // parallel residency-dedupe would trust them over the stores.
  Workload w = MakeExample1(2, 3, 1);
  AnalysisResult a = AnalyzeProgram(w.program);
  ScheduleSolver solver(w.program, a.dependences);
  std::vector<const CoAccess*> q = {
      Find(a.sharing, w.program, "s1WC->s2RC"),
      Find(a.sharing, w.program, "s2WE->s2RE"),
      Find(a.sharing, w.program, "s2WE->s2WE")};
  for (auto* o : q) ASSERT_NE(o, nullptr);
  auto s = solver.FindSchedule(q);
  ASSERT_TRUE(s.has_value());

  auto env = NewMemEnv();
  for (int threads : {1, 4}) {
    auto rt = OpenStores(env.get(), w.program, "/dv" + std::to_string(threads));
    rt.status().CheckOK();
    InitInputs(w, *rt, /*seed=*/7).CheckOK();
    BufferPool pool(int64_t{1} << 30);
    ExecOptions opts;
    opts.exec_threads = threads;
    opts.pipeline_depth = 2;
    opts.shared_pool = &pool;
    Executor ex(w.program, rt->raw(), w.kernels, opts);
    auto stats = ex.Run(*s, q);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    // C's writes are fully elided under this plan (its blocks never touch
    // disk), so no C frame may linger after the run.
    const int c_id = 2;
    for (int64_t b = 0; b < w.program.array(c_id).NumBlocks(); ++b) {
      EXPECT_EQ(pool.Probe(c_id, b), nullptr)
          << "threads=" << threads << " C block " << b;
    }
    // Per-run pool stats must be deltas even though the pool is shared.
    ExecStats again = ex.Run(*s, q).ValueOrDie();
    EXPECT_EQ(again.pool.dirty_writebacks, 0);
    EXPECT_LE(again.pool.misses, stats->pool.misses + stats->pool.hits);
  }
}

TEST(ParallelExecTest, TightCapParksInsteadOfCorrupting) {
  // Cap near the serial peak: parallel acquisition must back off (park and
  // retry) rather than deadlock or corrupt. ResourceExhausted is an
  // acceptable outcome at pathological caps; silent wrong answers or
  // hangs are not.
  Workload w = MakeTwoMatMul(TwoMatMulConfig::kConfigA, /*scale=*/1000);
  auto env = NewMemEnv();
  Runtime rt0;
  ExecStats s0 = MustRun(w, env.get(), "/tc0", w.program.original_schedule(),
                         {}, ExecOptions{}, &rt0);
  ExecOptions opts;
  opts.exec_threads = 4;
  opts.pipeline_depth = 2;
  opts.memory_cap_bytes = s0.peak_required_bytes * 2;
  auto rt1 = OpenStores(env.get(), w.program, "/tc1");
  rt1.status().CheckOK();
  InitInputs(w, *rt1, /*seed=*/7).CheckOK();
  BufferPool pool(opts.memory_cap_bytes);
  opts.shared_pool = &pool;
  Executor ex(w.program, rt1->raw(), w.kernels, opts);
  auto stats = ex.Run(w.program.original_schedule(), {});
  EXPECT_EQ(pool.PinnedFrames(), 0);
  if (!stats.ok()) {
    EXPECT_EQ(stats.status().code(), StatusCode::kResourceExhausted)
        << stats.status().ToString();
    return;  // starved at a pathological cap: acceptable, and clean
  }
  EXPECT_EQ(stats->pool.dirty_writebacks, 0);
  for (int arr : w.output_arrays) {
    const ArrayInfo& info = w.program.array(arr);
    auto d = MaxAbsDifference(info, rt0.stores[size_t(arr)].get(),
                              rt1->stores[size_t(arr)].get());
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(*d, 0.0) << info.name;
  }
}

}  // namespace
}  // namespace riot
