// Soak coverage for the parallel executor (ctest label: stress): repeated
// runs across thread counts, storage formats, tight caps, and fault
// injection, hunting for races, deadlocks, and pin leaks that a single
// pass can miss. Run under -DRIOT_SANITIZE=thread for the full effect.
#include <gtest/gtest.h>

#include "core/access_plan.h"
#include "exec/executor.h"
#include "exec/verify.h"
#include "ops/runtime.h"
#include "ops/workload.h"
#include "storage/env.h"

namespace riot {
namespace {

ExecStats MustRun(const Workload& w, Env* env, const std::string& dir,
                  ExecOptions opts, Runtime* rt_out,
                  StorageFormat format = StorageFormat::kDaf) {
  auto rt = OpenStores(env, w.program, dir, format);
  rt.status().CheckOK();
  InitInputs(w, *rt, /*seed=*/7).CheckOK();
  Executor ex(w.program, rt->raw(), w.kernels, opts);
  auto stats = ex.Run(w.program.original_schedule(), {});
  stats.status().CheckOK();
  if (rt_out != nullptr) *rt_out = std::move(rt).ValueOrDie();
  return *stats;
}

TEST(ParallelStressTest, RepeatedRunsStayBitIdentical) {
  Workload w = MakeTwoMatMul(TwoMatMulConfig::kConfigA, /*scale=*/1000);
  auto env = NewMemEnv();
  Runtime rt0;
  MustRun(w, env.get(), "/ref", ExecOptions{}, &rt0);
  int round = 0;
  for (int iter = 0; iter < 6; ++iter) {
    for (int threads : {2, 3, 8}) {
      ExecOptions opts;
      opts.exec_threads = threads;
      opts.pipeline_depth = iter % 3;  // 0 = pure parallel, no pipeline
      opts.io_threads = 1 + iter % 2;
      Runtime rt1;
      MustRun(w, env.get(), "/r" + std::to_string(round++), opts, &rt1);
      for (int arr : w.output_arrays) {
        const ArrayInfo& info = w.program.array(arr);
        auto d = MaxAbsDifference(info, rt0.stores[size_t(arr)].get(),
                                  rt1.stores[size_t(arr)].get());
        ASSERT_TRUE(d.ok());
        ASSERT_EQ(*d, 0.0)
            << "iter " << iter << " threads " << threads << " array "
            << info.name;
      }
    }
  }
}

TEST(ParallelStressTest, LabTreeUnderManyThreads) {
  Workload w = MakeTwoMatMul(TwoMatMulConfig::kConfigB, /*scale=*/1000);
  auto env = NewMemEnv();
  Runtime rt0;
  MustRun(w, env.get(), "/lt_ref", ExecOptions{}, &rt0,
          StorageFormat::kLabTree);
  for (int iter = 0; iter < 4; ++iter) {
    ExecOptions opts;
    opts.exec_threads = 8;
    opts.pipeline_depth = 2;
    Runtime rt1;
    MustRun(w, env.get(), "/lt" + std::to_string(iter), opts, &rt1,
            StorageFormat::kLabTree);
    for (int arr : w.output_arrays) {
      const ArrayInfo& info = w.program.array(arr);
      auto d = MaxAbsDifference(info, rt0.stores[size_t(arr)].get(),
                                rt1.stores[size_t(arr)].get());
      ASSERT_TRUE(d.ok());
      ASSERT_EQ(*d, 0.0) << "iter " << iter << " array " << info.name;
    }
  }
}

TEST(ParallelStressTest, FaultSweepNeverHangsOrLeaksPins) {
  Workload w = MakeTwoMatMul(TwoMatMulConfig::kConfigA, /*scale=*/1000);
  auto mem = NewMemEnv();
  {
    auto rt = OpenStores(mem.get(), w.program, "/f");
    ASSERT_TRUE(rt.ok());
    ASSERT_TRUE(InitInputs(w, *rt, 5).ok());
  }
  for (int64_t fail_after = 0; fail_after < 120; fail_after += 7) {
    SCOPED_TRACE("fail_after=" + std::to_string(fail_after));
    auto env = NewFaultyEnv(mem.get(), fail_after);
    auto rt = OpenStores(env.get(), w.program, "/f");
    if (!rt.ok()) continue;
    BufferPool pool(int64_t{1} << 30);
    ExecOptions eo;
    eo.exec_threads = 8;
    eo.pipeline_depth = 2;
    eo.shared_pool = &pool;
    Executor ex(w.program, rt->raw(), w.kernels, eo);
    auto stats = ex.Run(w.program.original_schedule(), {});
    if (!stats.ok()) {
      EXPECT_EQ(stats.status().code(), StatusCode::kIoError)
          << stats.status().ToString();
    }
    EXPECT_EQ(pool.PinnedFrames(), 0);
    EXPECT_EQ(pool.PinnedOrRetainedBytes(), 0);
  }
}

}  // namespace
}  // namespace riot
