// Ablation: opportunistic LRU buffer-pool "sharing" versus planned sharing
// (paper Section 2: buffer-pool sharing is "low-level, opportunistic, and
// extremely sensitive to timing and the replacement policy").
#include <gtest/gtest.h>

#include "core/optimizer.h"
#include "exec/executor.h"
#include "exec/verify.h"
#include "ops/runtime.h"
#include "ops/workload.h"
#include "storage/env.h"

namespace riot {
namespace {

struct RunOutcome {
  ExecStats stats;
  Runtime rt;
};

RunOutcome RunWith(const Workload& w, const OptimizationResult& r,
                   const Plan& plan, ExecMode mode, int64_t cap,
                   Env* env, const std::string& dir) {
  auto rt = OpenStores(env, w.program, dir);
  rt.status().CheckOK();
  InitInputs(w, *rt, 11).CheckOK();
  std::vector<const CoAccess*> q;
  for (int oi : plan.opportunities) {
    q.push_back(&r.analysis.sharing[static_cast<size_t>(oi)]);
  }
  ExecOptions eo;
  eo.memory_cap_bytes = cap;
  eo.mode = mode;
  Executor ex(w.program, rt->raw(), w.kernels, eo);
  auto stats = ex.Run(plan.schedule, q);
  stats.status().CheckOK();
  return {*stats, std::move(rt).ValueOrDie()};
}

TEST(OpportunisticCacheTest, CorrectButInferiorUnderPlanCap) {
  Workload w = MakeExample1(3, 4, 2);
  OptimizationResult r = Optimize(w.program);
  const Plan& best = r.best();
  ASSERT_FALSE(best.opportunities.empty());
  auto env = NewMemEnv();
  const int64_t cap = best.cost.peak_memory_bytes;

  // Planned execution of the best plan under its own memory requirement.
  RunOutcome planned =
      RunWith(w, r, best, ExecMode::kPlanExact, cap, env.get(), "/plan");
  // Opportunistic caching with the SAME schedule and the SAME cap: the LRU
  // pool must not beat the planned sharing, and with the original schedule
  // (plan 0) it loses decisively because reuse distances exceed the cap.
  RunOutcome cache_best = RunWith(w, r, best, ExecMode::kOpportunisticCache,
                                  cap, env.get(), "/cache_best");
  RunOutcome cache_orig =
      RunWith(w, r, r.plans[0], ExecMode::kOpportunisticCache, cap,
              env.get(), "/cache_orig");

  EXPECT_GE(cache_best.stats.bytes_read, planned.stats.bytes_read);
  EXPECT_GT(cache_orig.stats.bytes_read + cache_orig.stats.bytes_written,
            planned.stats.bytes_read + planned.stats.bytes_written);

  // All three execute the same math.
  for (int arr : w.output_arrays) {
    const ArrayInfo& info = w.program.array(arr);
    auto d1 = MaxAbsDifference(info, planned.rt.stores[size_t(arr)].get(),
                               cache_best.rt.stores[size_t(arr)].get());
    auto d2 = MaxAbsDifference(info, planned.rt.stores[size_t(arr)].get(),
                               cache_orig.rt.stores[size_t(arr)].get());
    EXPECT_LE(*d1, 1e-9);
    EXPECT_LE(*d2, 1e-9);
  }
}

TEST(OpportunisticCacheTest, HugeCacheCanMatchPlannedIo) {
  // With unbounded memory the opportunistic cache keeps everything and
  // reads each block once — the planned best cannot be beaten on reads, but
  // it still wins on writes (W->W elimination and temp elision need plan
  // knowledge the cache lacks).
  Workload w = MakeExample1(2, 3, 1);
  OptimizationResult r = Optimize(w.program);
  auto env = NewMemEnv();
  const int64_t huge = int64_t{1} << 40;
  RunOutcome planned =
      RunWith(w, r, r.best(), ExecMode::kPlanExact, huge, env.get(), "/p");
  RunOutcome cache = RunWith(w, r, r.plans[0], ExecMode::kOpportunisticCache,
                             huge, env.get(), "/c");
  EXPECT_LT(planned.stats.bytes_written, cache.stats.bytes_written);
  EXPECT_LE(planned.stats.bytes_read + planned.stats.bytes_written,
            cache.stats.bytes_read + cache.stats.bytes_written);
}

}  // namespace
}  // namespace riot
