// Integration of the ThrottledEnv disk model with plan execution: modeled
// seconds accrued by the storage layer must match the cost model's
// volume-to-time conversion exactly (same two-rate model), so paper-scale
// I/O times can be reported deterministically from scaled runs.
#include <gtest/gtest.h>

#include "core/optimizer.h"
#include "exec/executor.h"
#include "ops/runtime.h"
#include "ops/workload.h"
#include "storage/env.h"

namespace riot {
namespace {

TEST(ThrottledIntegrationTest, ModeledSecondsMatchCostModelConversion) {
  Workload w = MakeExample1(3, 3, 2);
  OptimizationResult r = Optimize(w.program);
  auto mem = NewMemEnv();
  auto disk = NewThrottledEnv(mem.get(), /*read=*/96.0, /*write=*/60.0);

  for (int pi : {0, r.best_index}) {
    const Plan& plan = r.plans[static_cast<size_t>(pi)];
    disk->stats().Reset();
    auto rt = OpenStores(disk.get(), w.program, "/t" + std::to_string(pi));
    ASSERT_TRUE(rt.ok());
    ASSERT_TRUE(InitInputs(w, *rt, 3).ok());
    const double init_seconds = disk->stats().modeled_seconds();
    std::vector<const CoAccess*> q;
    for (int oi : plan.opportunities) {
      q.push_back(&r.analysis.sharing[static_cast<size_t>(oi)]);
    }
    Executor ex(w.program, rt->raw(), w.kernels);
    auto stats = ex.Run(plan.schedule, q);
    ASSERT_TRUE(stats.ok());
    // Cost model conversion of the plan's exact volume (Example1 programs
    // are built at their stated size, so plan.cost IS the executed scale).
    CostModelOptions cm;  // defaults are the paper rates: 96 / 60 MB/s
    double expect = static_cast<double>(plan.cost.read_bytes) /
                        (cm.read_mb_per_s * 1e6) +
                    static_cast<double>(plan.cost.write_bytes) /
                        (cm.write_mb_per_s * 1e6);
    double modeled = disk->stats().modeled_seconds() - init_seconds;
    EXPECT_NEAR(modeled, expect, 1e-9) << "plan " << pi;
  }
}

TEST(ThrottledIntegrationTest, RequestOverheadChargesPerBlock) {
  // The "more refined model" the paper mentions: charging an overhead per
  // I/O request. With per_request_ms set, modeled time grows by exactly
  // (block_reads + block_writes) * overhead.
  Workload w = MakeExample1(2, 2, 1);
  auto mem = NewMemEnv();
  auto flat = NewThrottledEnv(mem.get(), 96.0, 60.0, /*per_request_ms=*/0.0);
  auto perreq = NewThrottledEnv(mem.get(), 96.0, 60.0, /*per_request_ms=*/2.0);
  auto run = [&](Env* env, const char* dir) {
    auto rt = OpenStores(env, w.program, dir);
    InitInputs(w, *rt, 3).CheckOK();
    Executor ex(w.program, rt->raw(), w.kernels);
    auto stats = ex.Run(w.program.original_schedule(), {});
    stats.status().CheckOK();
    return *stats;
  };
  ExecStats s1 = run(flat.get(), "/flat");
  ExecStats s2 = run(perreq.get(), "/perreq");
  EXPECT_EQ(s1.block_reads, s2.block_reads);
  double extra = perreq->stats().modeled_seconds() -
                 flat->stats().modeled_seconds();
  // Same byte volume on both paths; the difference is pure request count
  // (including the InitInputs writes, identical on both).
  int64_t reqs = perreq->stats().read_ops.load() +
                 perreq->stats().write_ops.load();
  EXPECT_NEAR(extra, 0.002 * static_cast<double>(reqs), 1e-9);
}

}  // namespace
}  // namespace riot
