// Execution engine tests: kernels run in scheduled order with correct
// buffering, sharing realization, and I/O accounting.
#include "exec/executor.h"

#include <gtest/gtest.h>

#include "analysis/coaccess.h"
#include "core/cost_model.h"
#include "core/schedule_solver.h"
#include "exec/verify.h"
#include "ops/runtime.h"
#include "ops/workload.h"
#include "storage/env.h"

namespace riot {
namespace {

const CoAccess* Find(const std::vector<CoAccess>& list, const Program& p,
                     const std::string& label) {
  for (const auto& ca : list) {
    if (ca.Label(p) == label) return &ca;
  }
  return nullptr;
}

// Computes the expected E = (A + B) * D with plain in-memory math.
std::vector<double> ReferenceExample1(const Workload& w, const Runtime& rt) {
  const Program& p = w.program;
  const ArrayInfo& ai = p.array(0);
  const ArrayInfo& di = p.array(3);
  const ArrayInfo& ei = p.array(4);
  auto a = ReadWholeArray(ai, rt.stores[0].get()).ValueOrDie();
  auto b = ReadWholeArray(ai, rt.stores[1].get()).ValueOrDie();
  auto d = ReadWholeArray(di, rt.stores[3].get()).ValueOrDie();
  // Dense views per block; compute blockwise like the kernels do.
  const int64_t br = ai.block_elems[0], bc = ai.block_elems[1];
  const int64_t dc = di.block_elems[1];
  std::vector<double> e(
      static_cast<size_t>(ei.NumBlocks() * ei.ElemsPerBlock()), 0.0);
  for (int64_t i = 0; i < ai.grid[0]; ++i) {
    for (int64_t j = 0; j < di.grid[1]; ++j) {
      for (int64_t k = 0; k < ai.grid[1]; ++k) {
        const double* ab = a.data() + ai.LinearBlockIndex({i, k}) *
                                          ai.ElemsPerBlock();
        const double* bb = b.data() + ai.LinearBlockIndex({i, k}) *
                                          ai.ElemsPerBlock();
        const double* db = d.data() + di.LinearBlockIndex({k, j}) *
                                          di.ElemsPerBlock();
        double* eb = e.data() + ei.LinearBlockIndex({i, j}) *
                                    ei.ElemsPerBlock();
        for (int64_t cc = 0; cc < dc; ++cc) {
          for (int64_t kk = 0; kk < bc; ++kk) {
            double dv = db[cc * bc + kk];
            for (int64_t rr = 0; rr < br; ++rr) {
              eb[cc * br + rr] +=
                  (ab[kk * br + rr] + bb[kk * br + rr]) * dv;
            }
          }
        }
      }
    }
  }
  return e;
}

TEST(ExecutorTest, OriginalScheduleComputesCorrectResult) {
  Workload w = MakeExample1(2, 3, 2);
  auto env = NewMemEnv();
  auto rt = OpenStores(env.get(), w.program, "/t");
  ASSERT_TRUE(rt.ok());
  ASSERT_TRUE(InitInputs(w, *rt, 3).ok());
  auto expect = ReferenceExample1(w, *rt);

  Executor ex(w.program, rt->raw(), w.kernels);
  auto stats = ex.Run(w.program.original_schedule(), {});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  auto e = ReadWholeArray(w.program.array(4), rt->stores[4].get());
  ASSERT_TRUE(e.ok());
  ASSERT_EQ(e->size(), expect.size());
  for (size_t i = 0; i < expect.size(); ++i) {
    ASSERT_NEAR((*e)[i], expect[i], 1e-9) << "elem " << i;
  }
}

TEST(ExecutorTest, IoMatchesCostModelForOriginal) {
  Workload w = MakeExample1(2, 3, 2);
  auto env = NewMemEnv();
  auto rt = OpenStores(env.get(), w.program, "/t");
  ASSERT_TRUE(InitInputs(w, *rt, 3).ok());
  PlanCost predicted =
      EvaluatePlanCost(w.program, w.program.original_schedule(), {});
  Executor ex(w.program, rt->raw(), w.kernels);
  auto stats = ex.Run(w.program.original_schedule(), {});
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->bytes_read, predicted.read_bytes);
  EXPECT_EQ(stats->bytes_written, predicted.write_bytes);
  EXPECT_EQ(stats->peak_required_bytes, predicted.peak_memory_bytes);
}

TEST(ExecutorTest, SharedPlanSkipsSavedIo) {
  Workload w = MakeExample1(2, 3, 1);
  auto env = NewMemEnv();
  auto rt = OpenStores(env.get(), w.program, "/t");
  ASSERT_TRUE(InitInputs(w, *rt, 5).ok());
  AnalysisResult a = AnalyzeProgram(w.program);
  ScheduleSolver solver(w.program, a.dependences);
  std::vector<const CoAccess*> q = {
      Find(a.sharing, w.program, "s1WC->s2RC"),
      Find(a.sharing, w.program, "s2WE->s2RE"),
      Find(a.sharing, w.program, "s2WE->s2WE")};
  for (auto* o : q) ASSERT_NE(o, nullptr);
  auto s = solver.FindSchedule(q);
  ASSERT_TRUE(s.has_value());
  Executor ex(w.program, rt->raw(), w.kernels);
  auto stats = ex.Run(*s, q);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  // C never touches disk (n3 = 1, fully pipelined); E written once per
  // block; reads only A, B, D.
  const int64_t blk = w.program.array(0).BlockBytes();
  EXPECT_EQ(stats->bytes_read, (2 * 2 * 3 + 3 * 1 * 2) * blk);
  EXPECT_EQ(stats->bytes_written, 2 * 1 * blk);
  EXPECT_EQ(stats->pool.dirty_writebacks, 0);
}

TEST(ExecutorTest, MemoryCapViolationSurfacesAsError) {
  Workload w = MakeExample1(2, 3, 2);
  auto env = NewMemEnv();
  auto rt = OpenStores(env.get(), w.program, "/t");
  ASSERT_TRUE(InitInputs(w, *rt, 5).ok());
  ExecOptions opts;
  opts.memory_cap_bytes = w.program.array(0).BlockBytes() * 2;  // too small
  Executor ex(w.program, rt->raw(), w.kernels, opts);
  auto stats = ex.Run(w.program.original_schedule(), {});
  EXPECT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kResourceExhausted);
}

TEST(ExecutorTest, ComputeAndIoTimersPopulate)
{
  Workload w = MakeExample1(2, 2, 1);
  auto env = NewMemEnv();
  auto rt = OpenStores(env.get(), w.program, "/t");
  ASSERT_TRUE(InitInputs(w, *rt, 5).ok());
  Executor ex(w.program, rt->raw(), w.kernels);
  auto stats = ex.Run(w.program.original_schedule(), {});
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->wall_seconds, 0.0);
  EXPECT_GE(stats->compute_seconds, 0.0);
  EXPECT_GT(stats->block_reads, 0);
  EXPECT_GT(stats->block_writes, 0);
}

TEST(VerifyTest, MaxAbsDifferenceDetectsMismatch) {
  ArrayInfo info;
  info.name = "A";
  info.grid = {2, 1};
  info.block_elems = {4, 1};
  auto env = NewMemEnv();
  auto s1 = OpenDaf(env.get(), "/a", info.BlockBytes(), info.NumBlocks());
  auto s2 = OpenDaf(env.get(), "/b", info.BlockBytes(), info.NumBlocks());
  std::vector<double> blk = {1, 2, 3, 4};
  for (int64_t b = 0; b < 2; ++b) {
    ASSERT_TRUE((*s1)->WriteBlock(b, blk.data()).ok());
    ASSERT_TRUE((*s2)->WriteBlock(b, blk.data()).ok());
  }
  auto d0 = MaxAbsDifference(info, s1->get(), s2->get());
  ASSERT_TRUE(d0.ok());
  EXPECT_EQ(*d0, 0.0);
  blk[2] = 7.5;
  ASSERT_TRUE((*s2)->WriteBlock(1, blk.data()).ok());
  auto d1 = MaxAbsDifference(info, s1->get(), s2->get());
  EXPECT_DOUBLE_EQ(*d1, 4.5);
}

}  // namespace
}  // namespace riot
