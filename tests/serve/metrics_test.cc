// Deterministic checks of the serving histogram: bucket math, quantiles
// bounded by one bucket width, merge, and the Metrics recorder's
// completed/failed accounting.
#include "serve/metrics.h"

#include <gtest/gtest.h>

namespace riot {
namespace serve {
namespace {

TEST(LatencyHistogramTest, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.Quantile(0.5), 0);
  EXPECT_EQ(h.mean_seconds(), 0);
  EXPECT_EQ(h.max_seconds(), 0);
}

TEST(LatencyHistogramTest, SingleSampleEveryQuantile) {
  LatencyHistogram h;
  h.Record(0.0123);
  EXPECT_EQ(h.count(), 1);
  // Every quantile is that sample: the bucket bound clamps to the max.
  EXPECT_DOUBLE_EQ(h.P50(), 0.0123);
  EXPECT_DOUBLE_EQ(h.P99(), 0.0123);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 0.0123);
  EXPECT_DOUBLE_EQ(h.max_seconds(), 0.0123);
}

TEST(LatencyHistogramTest, QuantileWithinOneBucketWidth) {
  // 1..1000 ms uniformly: p50 must be ~500ms within the ~9.6% bucket
  // resolution, p99 ~990ms, and Quantile(1) exactly the max.
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(i * 1e-3);
  EXPECT_EQ(h.count(), 1000);
  EXPECT_NEAR(h.P50(), 0.5, 0.5 * 0.11);
  EXPECT_NEAR(h.P99(), 0.99, 0.99 * 0.11);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 1.0);
  EXPECT_NEAR(h.mean_seconds(), 0.5005, 1e-9);
}

TEST(LatencyHistogramTest, QuantilesAreMonotone) {
  LatencyHistogram h;
  for (int i = 1; i <= 257; ++i) h.Record(i * 3.7e-5);
  double prev = 0;
  for (double q : {0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    const double v = h.Quantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), h.max_seconds());
}

TEST(LatencyHistogramTest, ExtremesLandInEndBuckets) {
  LatencyHistogram h;
  h.Record(0);        // below 1us -> bucket 0
  h.Record(-1);       // clamped, never UB
  h.Record(1e-9);
  h.Record(5000.0);   // beyond the last decade -> clamped to the top bucket
  EXPECT_EQ(h.count(), 4);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 5000.0);
  EXPECT_LE(h.Quantile(0.5), 1e-6);
}

TEST(LatencyHistogramTest, DeterministicAcrossRuns) {
  LatencyHistogram a, b;
  for (int i = 0; i < 5000; ++i) {
    const double v = 1e-5 * (1 + (i * 2654435761u % 9973));
    a.Record(v);
    b.Record(v);
  }
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    EXPECT_DOUBLE_EQ(a.Quantile(q), b.Quantile(q));
  }
}

TEST(LatencyHistogramTest, MergeMatchesCombinedRecording) {
  LatencyHistogram lo, hi, both;
  for (int i = 1; i <= 100; ++i) {
    lo.Record(i * 1e-4);
    both.Record(i * 1e-4);
  }
  for (int i = 1; i <= 100; ++i) {
    hi.Record(i * 1e-2);
    both.Record(i * 1e-2);
  }
  lo.Merge(hi);
  EXPECT_EQ(lo.count(), both.count());
  for (double q : {0.25, 0.5, 0.75, 0.99}) {
    EXPECT_DOUBLE_EQ(lo.Quantile(q), both.Quantile(q));
  }
  EXPECT_DOUBLE_EQ(lo.max_seconds(), both.max_seconds());
}

TEST(MetricsTest, CountsCompletedAndFailedSeparately) {
  Metrics m;
  m.OnSubmit();
  m.OnSubmit();
  m.OnSubmit();
  m.OnDone(true, /*whale=*/false, 0.010, 0.002, 0.001, 0.007);
  m.OnDone(true, /*whale=*/true, 0.020, 0.004, 0.002, 0.014);
  // Failed: latency still counts.
  m.OnDone(false, /*whale=*/false, 0.500, 0.450, 0.0, 0.0);
  const MetricsSnapshot s = m.Snapshot();
  EXPECT_EQ(s.submitted, 3);
  EXPECT_EQ(s.completed, 2);
  EXPECT_EQ(s.failed, 1);
  EXPECT_EQ(s.latency.count(), 3);
  EXPECT_EQ(s.latency_mice.count(), 2);
  EXPECT_EQ(s.latency_whales.count(), 1);
  EXPECT_DOUBLE_EQ(s.latency_whales.max_seconds(), 0.020);
  EXPECT_EQ(s.queue_wait.count(), 3);
  // Admission/exec breakdowns only exist for jobs that actually ran.
  EXPECT_EQ(s.admission_wait.count(), 2);
  EXPECT_EQ(s.exec_wall.count(), 2);
  EXPECT_DOUBLE_EQ(s.latency.max_seconds(), 0.5);
  EXPECT_GE(s.elapsed_seconds, 0.0);
}

}  // namespace
}  // namespace serve
}  // namespace riot
