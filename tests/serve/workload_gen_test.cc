// The open-loop generator: Zipf skew (hot datasets dominate, theta=0 is
// uniform), the read/write/whale mix, arrival-rate accuracy for both
// Poisson and fixed-interval streams, and determinism by seed.
#include "serve/workload_gen.h"

#include <gtest/gtest.h>

#include <vector>

namespace riot {
namespace serve {
namespace {

TEST(FastZipfTest, HeavySkewConcentratesOnHotRanks) {
  Rng rng(42);
  FastZipf zipf(100, 0.99);
  std::vector<int> counts(100, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[static_cast<size_t>(zipf.Sample(rng))];
  }
  // Rank 0 alone draws ~1/zeta(100) ~ 19% under theta=0.99; the top ten
  // ranks together well over half. Generous bounds keep this stable.
  EXPECT_GT(counts[0], kDraws / 8);
  int top10 = 0;
  for (int i = 0; i < 10; ++i) top10 += counts[i];
  EXPECT_GT(top10, kDraws / 2);
  // Monotone-ish: the hottest rank beats the coldest by an order of
  // magnitude.
  EXPECT_GT(counts[0], 10 * counts[99]);
}

TEST(FastZipfTest, ThetaZeroIsUniform) {
  Rng rng(7);
  FastZipf zipf(16, 0.0);
  std::vector<int> counts(16, 0);
  const int kDraws = 160000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[static_cast<size_t>(zipf.Sample(rng))];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 16, kDraws / 16 * 0.15);
  }
}

TEST(FastZipfTest, RanksStayInRange) {
  Rng rng(3);
  FastZipf zipf(5, 0.9);
  for (int i = 0; i < 20000; ++i) {
    EXPECT_LT(zipf.Sample(rng), 5u);
  }
}

TEST(OpenLoopGeneratorTest, PoissonArrivalsHitTheOfferedRate) {
  TrafficOptions opts;
  opts.offered_jobs_per_sec = 200.0;
  opts.seed = 11;
  OpenLoopGenerator gen(opts);
  const auto jobs = gen.Take(20000);
  ASSERT_EQ(jobs.size(), 20000u);
  // Arrivals are strictly ordered and average 1/rate apart (within 5%).
  double prev = -1;
  for (const JobSpec& j : jobs) {
    EXPECT_GT(j.arrival_seconds, prev);
    prev = j.arrival_seconds;
  }
  const double mean_gap = jobs.back().arrival_seconds / 20000;
  EXPECT_NEAR(mean_gap, 1.0 / 200.0, 0.05 / 200.0);
}

TEST(OpenLoopGeneratorTest, FixedIntervalIsExact) {
  TrafficOptions opts;
  opts.offered_jobs_per_sec = 10.0;
  opts.poisson_arrivals = false;
  OpenLoopGenerator gen(opts);
  const auto jobs = gen.Take(5);
  for (size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_NEAR(jobs[i].arrival_seconds, 0.1 * (i + 1), 1e-12);
    EXPECT_EQ(jobs[i].id, static_cast<int64_t>(i));
  }
}

TEST(OpenLoopGeneratorTest, MixFractionsRespected) {
  TrafficOptions opts;
  opts.write_fraction = 0.2;
  opts.whale_fraction = 0.05;
  opts.seed = 5;
  OpenLoopGenerator gen(opts);
  int reads = 0, writes = 0, whales = 0;
  const int kJobs = 50000;
  for (int i = 0; i < kJobs; ++i) {
    switch (gen.Next().kind) {
      case JobKind::kRead: ++reads; break;
      case JobKind::kWrite: ++writes; break;
      case JobKind::kWhale: ++whales; break;
    }
  }
  EXPECT_NEAR(whales, kJobs * 0.05, kJobs * 0.01);
  // write_fraction applies to the non-whale remainder.
  EXPECT_NEAR(writes, kJobs * 0.95 * 0.2, kJobs * 0.02);
  EXPECT_EQ(reads + writes + whales, kJobs);
}

TEST(OpenLoopGeneratorTest, DeterministicBySeed) {
  TrafficOptions opts;
  opts.whale_fraction = 0.1;
  opts.seed = 99;
  OpenLoopGenerator a(opts), b(opts);
  for (int i = 0; i < 1000; ++i) {
    const JobSpec ja = a.Next(), jb = b.Next();
    EXPECT_EQ(ja.id, jb.id);
    EXPECT_EQ(ja.dataset, jb.dataset);
    EXPECT_EQ(static_cast<int>(ja.kind), static_cast<int>(jb.kind));
    EXPECT_DOUBLE_EQ(ja.arrival_seconds, jb.arrival_seconds);
  }
  opts.seed = 100;
  OpenLoopGenerator c(opts);
  TrafficOptions opts99 = opts;
  opts99.seed = 99;
  OpenLoopGenerator d(opts99);
  bool any_diff = false;
  for (int i = 0; i < 100 && !any_diff; ++i) {
    any_diff = c.Next().arrival_seconds != d.Next().arrival_seconds;
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace serve
}  // namespace riot
