// Fast end-to-end check of the serving front end: a small open-loop burst
// through Catalog + Server over a MemEnv completes every job, the metrics
// add up, per-session budgets hold, and the catalog's stores release
// cleanly. The heavy open-loop soak lives in serve_soak_test.cc (stress
// label).
#include <gtest/gtest.h>

#include <thread>

#include "serve/catalog.h"
#include "serve/metrics.h"
#include "serve/server.h"
#include "serve/workload_gen.h"
#include "storage/env.h"

namespace riot {
namespace serve {
namespace {

CatalogOptions SmallCatalog() {
  CatalogOptions copts;
  copts.num_datasets = 3;
  copts.num_slots = 2;
  copts.mouse_grid = 2;
  copts.mouse_block = 16;
  copts.whale_grid = 3;
  copts.whale_block = 32;
  return copts;
}

TEST(ServeSmokeTest, BurstOfMiceAllComplete) {
  auto env = NewMemEnv();
  auto catalog = Catalog::Create(env.get(), SmallCatalog());
  ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();

  ServerOptions sopts;
  sopts.worker_threads = 2;
  sopts.runtime.pool_cap_bytes = int64_t{16} << 20;
  {
    Server server(catalog->get(), sopts);

    TrafficOptions traffic;
    traffic.num_datasets = 3;
    traffic.write_fraction = 0.3;
    traffic.seed = 17;
    OpenLoopGenerator gen(traffic);
    const int kJobs = 24;
    for (const JobSpec& job : gen.Take(kJobs)) server.Submit(job);
    server.Drain();

    const MetricsSnapshot s = server.Snapshot();
    EXPECT_EQ(s.submitted, kJobs);
    EXPECT_EQ(s.completed, kJobs);
    EXPECT_EQ(s.failed, 0);
    EXPECT_EQ(s.latency.count(), kJobs);
    EXPECT_EQ(s.exec_wall.count(), kJobs);
    EXPECT_GT(s.latency.P50(), 0.0);
    EXPECT_GE(s.latency.P99(), s.latency.P50());
    EXPECT_GT(s.throughput_jobs_per_sec, 0.0);

    const RuntimeStats rs = server.runtime().stats();
    EXPECT_EQ(rs.sessions_completed, kJobs);
    EXPECT_EQ(rs.sessions_failed, 0);

    // Store hygiene: every cached frame must drop before the catalog dies.
    ASSERT_TRUE((*catalog)->ReleaseFrom(server.runtime()).ok());
  }
}

TEST(ServeSmokeTest, WhalesAndMiceUnderSmallCap) {
  auto env = NewMemEnv();
  auto catalog = Catalog::Create(env.get(), SmallCatalog());
  ASSERT_TRUE(catalog.ok());
  // Cap sized so a whale and a mouse coexist but two whales park.
  const int64_t whale_fp = (*catalog)->footprint_bytes(JobKind::kWhale);

  ServerOptions sopts;
  sopts.worker_threads = 2;
  sopts.runtime.pool_cap_bytes = whale_fp + whale_fp / 2;
  Server server(catalog->get(), sopts);

  TrafficOptions traffic;
  traffic.num_datasets = 3;
  traffic.whale_fraction = 0.4;
  traffic.seed = 23;
  OpenLoopGenerator gen(traffic);
  const int kJobs = 16;
  for (const JobSpec& job : gen.Take(kJobs)) server.Submit(job);
  server.Drain();

  const MetricsSnapshot s = server.Snapshot();
  EXPECT_EQ(s.completed, kJobs);
  EXPECT_EQ(s.failed, 0);
  ASSERT_TRUE((*catalog)->ReleaseFrom(server.runtime()).ok());
}

TEST(ServeSmokeTest, SubmitNeverBlocksWhileWorkersAreBusy) {
  auto env = NewMemEnv();
  auto catalog = Catalog::Create(env.get(), SmallCatalog());
  ASSERT_TRUE(catalog.ok());

  ServerOptions sopts;
  sopts.worker_threads = 1;  // single worker: the queue must absorb bursts
  sopts.runtime.pool_cap_bytes = int64_t{16} << 20;
  Server server(catalog->get(), sopts);

  TrafficOptions traffic;
  traffic.num_datasets = 3;
  OpenLoopGenerator gen(traffic);
  // Submitting far faster than one worker drains must return immediately
  // (open loop); Drain() then retires the backlog.
  for (const JobSpec& job : gen.Take(32)) server.Submit(job);
  server.Drain();
  EXPECT_EQ(server.Snapshot().completed, 32);
  // Queue wait must dominate exec for the tail under a 1-worker backlog.
  const MetricsSnapshot s = server.Snapshot();
  EXPECT_GT(s.queue_wait.max_seconds(), 0.0);
  ASSERT_TRUE((*catalog)->ReleaseFrom(server.runtime()).ok());
}

}  // namespace
}  // namespace serve
}  // namespace riot
