// Open-loop soak (stress label): hundreds of jobs at an offered load that
// overruns capacity, whales mixed in, across admission policies AND
// replacement policies — the TSan/ASan stress leg drives this to shake
// races out of the full serve -> session -> shared-pool stack, including
// ScheduleOpt's merged multi-plan clock under concurrent binds. Asserts no
// job fails, budgets hold for every session, and SJF does not starve the
// whale (aging).
#include <gtest/gtest.h>

#include <cstdint>

#include "ops/admission.h"
#include "serve/catalog.h"
#include "serve/server.h"
#include "serve/workload_gen.h"
#include "storage/env.h"
#include "storage/replacement.h"

namespace riot {
namespace serve {
namespace {

void Soak(AdmissionPolicyKind policy,
          ReplacementKind replacement = ReplacementKind::kLru) {
  auto env = NewMemEnv();
  CatalogOptions copts;
  copts.num_datasets = 4;
  copts.num_slots = 8;
  copts.mouse_grid = 2;
  copts.mouse_block = 16;
  copts.whale_grid = 3;
  copts.whale_block = 48;
  auto catalog = Catalog::Create(env.get(), copts);
  ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();

  ServerOptions sopts;
  sopts.worker_threads = 8;
  sopts.runtime.admission = policy;
  sopts.runtime.admission_aging_seconds = 0.5;
  sopts.runtime.replacement = replacement;
  // Tight cap: one whale plus a few mice fit; concurrent whales park, so
  // admission continuously reorders under pressure.
  const int64_t whale_fp = (*catalog)->footprint_bytes(JobKind::kWhale);
  sopts.runtime.pool_cap_bytes = whale_fp + whale_fp / 2;
  Server server(catalog->get(), sopts);

  TrafficOptions traffic;
  traffic.num_datasets = 4;
  traffic.write_fraction = 0.25;
  traffic.whale_fraction = 0.1;
  traffic.zipf_theta = 0.99;
  traffic.seed = 31 + static_cast<uint64_t>(policy) +
                 17 * static_cast<uint64_t>(replacement);
  OpenLoopGenerator gen(traffic);
  const int kJobs = 300;
  for (const JobSpec& job : gen.Take(kJobs)) server.Submit(job);
  server.Drain();

  const MetricsSnapshot s = server.Snapshot();
  EXPECT_EQ(s.submitted, kJobs);
  EXPECT_EQ(s.completed, kJobs) << "policy="
                                << AdmissionPolicyName(policy);
  EXPECT_EQ(s.failed, 0);

  const RuntimeStats rs = server.runtime().stats();
  EXPECT_EQ(rs.sessions_completed, kJobs);
  EXPECT_LE(rs.peak_reserved_bytes, sopts.runtime.pool_cap_bytes);
  ASSERT_TRUE((*catalog)->ReleaseFrom(server.runtime()).ok());
}

TEST(ServeSoakTest, OpenLoopFifo) { Soak(AdmissionPolicyKind::kFifo); }

TEST(ServeSoakTest, OpenLoopSmallestFootprint) {
  Soak(AdmissionPolicyKind::kSmallestFootprint);
}

TEST(ServeSoakTest, OpenLoopShortestWork) {
  Soak(AdmissionPolicyKind::kShortestWork);
}

// Replacement dimension at the same tight cap: many sessions bind and
// unbind use plans concurrently, so ScheduleOpt exercises the merged
// multi-plan clock (rebinds, sole-survivor reactivation, unclaimed-frame
// LRU fallback) under real thread interleavings — the TSan leg's best shot
// at racing the policy's bookkeeping.
TEST(ServeSoakTest, ReplacementLru) {
  Soak(AdmissionPolicyKind::kFifo, ReplacementKind::kLru);
}

TEST(ServeSoakTest, ReplacementClock) {
  Soak(AdmissionPolicyKind::kFifo, ReplacementKind::kClock);
}

TEST(ServeSoakTest, ReplacementScheduleOpt) {
  Soak(AdmissionPolicyKind::kFifo, ReplacementKind::kScheduleOpt);
}

}  // namespace
}  // namespace serve
}  // namespace riot
