// Open-loop soak (stress label): hundreds of jobs at an offered load that
// overruns capacity, whales mixed in, across admission policies — the
// TSan/ASan stress leg drives this to shake races out of the full
// serve -> session -> shared-pool stack. Asserts no job fails, budgets
// hold for every session, and SJF does not starve the whale (aging).
#include <gtest/gtest.h>

#include <cstdint>

#include "ops/admission.h"
#include "serve/catalog.h"
#include "serve/server.h"
#include "serve/workload_gen.h"
#include "storage/env.h"

namespace riot {
namespace serve {
namespace {

void Soak(AdmissionPolicyKind policy) {
  auto env = NewMemEnv();
  CatalogOptions copts;
  copts.num_datasets = 4;
  copts.num_slots = 8;
  copts.mouse_grid = 2;
  copts.mouse_block = 16;
  copts.whale_grid = 3;
  copts.whale_block = 48;
  auto catalog = Catalog::Create(env.get(), copts);
  ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();

  ServerOptions sopts;
  sopts.worker_threads = 8;
  sopts.runtime.admission = policy;
  sopts.runtime.admission_aging_seconds = 0.5;
  // Tight cap: one whale plus a few mice fit; concurrent whales park, so
  // admission continuously reorders under pressure.
  const int64_t whale_fp = (*catalog)->footprint_bytes(JobKind::kWhale);
  sopts.runtime.pool_cap_bytes = whale_fp + whale_fp / 2;
  Server server(catalog->get(), sopts);

  TrafficOptions traffic;
  traffic.num_datasets = 4;
  traffic.write_fraction = 0.25;
  traffic.whale_fraction = 0.1;
  traffic.zipf_theta = 0.99;
  traffic.seed = 31 + static_cast<uint64_t>(policy);
  OpenLoopGenerator gen(traffic);
  const int kJobs = 300;
  for (const JobSpec& job : gen.Take(kJobs)) server.Submit(job);
  server.Drain();

  const MetricsSnapshot s = server.Snapshot();
  EXPECT_EQ(s.submitted, kJobs);
  EXPECT_EQ(s.completed, kJobs) << "policy="
                                << AdmissionPolicyName(policy);
  EXPECT_EQ(s.failed, 0);

  const RuntimeStats rs = server.runtime().stats();
  EXPECT_EQ(rs.sessions_completed, kJobs);
  EXPECT_LE(rs.peak_reserved_bytes, sopts.runtime.pool_cap_bytes);
  ASSERT_TRUE((*catalog)->ReleaseFrom(server.runtime()).ok());
}

TEST(ServeSoakTest, OpenLoopFifo) { Soak(AdmissionPolicyKind::kFifo); }

TEST(ServeSoakTest, OpenLoopSmallestFootprint) {
  Soak(AdmissionPolicyKind::kSmallestFootprint);
}

TEST(ServeSoakTest, OpenLoopShortestWork) {
  Soak(AdmissionPolicyKind::kShortestWork);
}

}  // namespace
}  // namespace serve
}  // namespace riot
