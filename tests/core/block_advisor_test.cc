// Block-size co-optimization tests (paper Section 7 future work).
#include "core/block_advisor.h"

#include <gtest/gtest.h>

#include "ops/workload.h"

namespace riot {
namespace {

std::vector<BlockConfigCandidate> AddMulFamily(
    const std::vector<int64_t>& block_rows) {
  std::vector<BlockConfigCandidate> cands;
  for (int64_t br : block_rows) {
    cands.push_back({"rows=" + std::to_string(br),
                     MakeAddMulBlocked(br, /*scale=*/1).program});
  }
  return cands;
}

TEST(BlockAdvisorTest, PicksGlobalMinimum) {
  auto cands = AddMulFamily({6000, 9000, 12000});
  OptimizerOptions opts;
  BlockAdvice advice = OptimizeWithBlockSizes(cands, opts);
  ASSERT_EQ(advice.outcomes.size(), 3u);
  ASSERT_GE(advice.best_candidate, 0);
  const auto& best =
      advice.outcomes[static_cast<size_t>(advice.best_candidate)];
  for (const auto& o : advice.outcomes) {
    if (!o.feasible) continue;
    EXPECT_LE(best.best_plan.cost.io_seconds, o.best_plan.cost.io_seconds);
  }
}

TEST(BlockAdvisorTest, SharingBeatsBiggerBlocksUnderSameCap) {
  // Paper Section 6.1: "blindly enlarging array blocks is not the best way
  // of utilizing extra memory; cost-driven optimization like ours can give
  // much better results." The 6000-row config with full sharing must beat
  // every bigger-block config's ORIGINAL plan.
  OptimizerOptions opts;
  opts.memory_cap_bytes = int64_t{2000} * 1000 * 1000;
  auto advice = OptimizeWithBlockSizes(AddMulFamily({6000, 9000}), opts);
  ASSERT_TRUE(advice.outcomes[0].feasible);
  OptimizerOptions plan0_only;
  plan0_only.max_combination_size = 0;
  auto tall = OptimizeWithBlockSizes(AddMulFamily({9000}), plan0_only);
  ASSERT_TRUE(tall.outcomes[0].feasible);
  EXPECT_LT(advice.outcomes[0].best_plan.cost.io_seconds,
            tall.outcomes[0].best_plan.cost.io_seconds);
}

TEST(BlockAdvisorTest, CacheAwareComputeTermFlipsBlockChoice) {
  // The paper's "blindly enlarging array blocks is not the best way of
  // utilizing extra memory", carried down to the cache level. Bigger blocks
  // genuinely save disk I/O here (each E-row instance re-reads all of D, so
  // halving the row-block count halves D's re-read volume) and the I/O-only
  // model duly picks them. But the 12000-row gemm instance touches a
  // C + D + E block working set of ~1.02 GB vs ~0.59 GB for 6000-row
  // blocks; a synthetic rate table whose modeled cache sits between the two
  // makes the big-block gemm pay the spill penalty on every one of its
  // flops, which dwarfs the saved D reads — the cache-aware advisor flips
  // to the smaller blocks. (bench_block_size reports the same comparison
  // with host-measured rates and wall clocks.)
  auto cands = AddMulFamily({12000, 6000});
  OptimizerOptions io_only;
  io_only.max_combination_size = 0;  // original plans: volume is exact
  auto a1 = OptimizeWithBlockSizes(cands, io_only);
  ASSERT_EQ(a1.best_candidate, 0);
  ASSERT_TRUE(a1.outcomes[1].feasible);
  EXPECT_LT(a1.outcomes[0].best_plan.cost.io_seconds,
            a1.outcomes[1].best_plan.cost.io_seconds);

  OptimizerOptions cache_aware = io_only;
  KernelRateTable rates;
  rates.elementwise_gflops = 4.0;
  rates.gemm_gflops = 4.0;
  rates.reduction_gflops = 4.0;
  rates.cache_bytes = int64_t{700} * 1000 * 1000;  // between the two sets
  rates.cache_penalty = 4.0;
  cache_aware.cost.compute = rates;
  auto a2 = OptimizeWithBlockSizes(cands, cache_aware);
  ASSERT_EQ(a2.best_candidate, 1);  // flipped
  const PlanCost& big = a2.outcomes[0].best_plan.cost;
  const PlanCost& small = a2.outcomes[1].best_plan.cost;
  EXPECT_GT(big.compute_seconds, small.compute_seconds);  // the penalty
  EXPECT_LT(small.TotalSeconds(), big.TotalSeconds());
  // The compute term left the I/O half untouched: same volumes as the
  // I/O-only evaluation of the same plans.
  EXPECT_EQ(big.read_bytes, a1.outcomes[0].best_plan.cost.read_bytes);
  EXPECT_EQ(small.read_bytes, a1.outcomes[1].best_plan.cost.read_bytes);
}

TEST(BlockAdvisorTest, InfeasibleUnderTinyCap) {
  OptimizerOptions opts;
  opts.memory_cap_bytes = 1;  // nothing fits
  auto advice = OptimizeWithBlockSizes(AddMulFamily({6000}), opts);
  EXPECT_EQ(advice.best_candidate, -1);
  EXPECT_FALSE(advice.outcomes[0].feasible);
}

TEST(BlockAdvisorTest, CapSteersChoice) {
  // With an unlimited cap the advisor may pick a plan needing more memory;
  // capping at the smallest config's plan-0 footprint forces a feasible
  // pick whose memory honors the cap.
  auto cands = AddMulFamily({6000, 12000});
  OptimizerOptions unlimited;
  auto a1 = OptimizeWithBlockSizes(cands, unlimited);
  ASSERT_GE(a1.best_candidate, 0);
  OptimizerOptions capped;
  capped.memory_cap_bytes =
      int64_t{700} * 1000 * 1000;  // below the 12000-row working set
  auto a2 = OptimizeWithBlockSizes(cands, capped);
  for (const auto& o : a2.outcomes) {
    if (o.feasible) {
      EXPECT_LE(o.best_plan.cost.peak_memory_bytes, capped.memory_cap_bytes);
    }
  }
}

}  // namespace
}  // namespace riot
