// Block-size co-optimization tests (paper Section 7 future work).
#include "core/block_advisor.h"

#include <gtest/gtest.h>

#include "ops/workload.h"

namespace riot {
namespace {

std::vector<BlockConfigCandidate> AddMulFamily(
    const std::vector<int64_t>& block_rows) {
  std::vector<BlockConfigCandidate> cands;
  for (int64_t br : block_rows) {
    cands.push_back({"rows=" + std::to_string(br),
                     MakeAddMulBlocked(br, /*scale=*/1).program});
  }
  return cands;
}

TEST(BlockAdvisorTest, PicksGlobalMinimum) {
  auto cands = AddMulFamily({6000, 9000, 12000});
  OptimizerOptions opts;
  BlockAdvice advice = OptimizeWithBlockSizes(cands, opts);
  ASSERT_EQ(advice.outcomes.size(), 3u);
  ASSERT_GE(advice.best_candidate, 0);
  const auto& best =
      advice.outcomes[static_cast<size_t>(advice.best_candidate)];
  for (const auto& o : advice.outcomes) {
    if (!o.feasible) continue;
    EXPECT_LE(best.best_plan.cost.io_seconds, o.best_plan.cost.io_seconds);
  }
}

TEST(BlockAdvisorTest, SharingBeatsBiggerBlocksUnderSameCap) {
  // Paper Section 6.1: "blindly enlarging array blocks is not the best way
  // of utilizing extra memory; cost-driven optimization like ours can give
  // much better results." The 6000-row config with full sharing must beat
  // every bigger-block config's ORIGINAL plan.
  OptimizerOptions opts;
  opts.memory_cap_bytes = int64_t{2000} * 1000 * 1000;
  auto advice = OptimizeWithBlockSizes(AddMulFamily({6000, 9000}), opts);
  ASSERT_TRUE(advice.outcomes[0].feasible);
  OptimizerOptions plan0_only;
  plan0_only.max_combination_size = 0;
  auto tall = OptimizeWithBlockSizes(AddMulFamily({9000}), plan0_only);
  ASSERT_TRUE(tall.outcomes[0].feasible);
  EXPECT_LT(advice.outcomes[0].best_plan.cost.io_seconds,
            tall.outcomes[0].best_plan.cost.io_seconds);
}

TEST(BlockAdvisorTest, InfeasibleUnderTinyCap) {
  OptimizerOptions opts;
  opts.memory_cap_bytes = 1;  // nothing fits
  auto advice = OptimizeWithBlockSizes(AddMulFamily({6000}), opts);
  EXPECT_EQ(advice.best_candidate, -1);
  EXPECT_FALSE(advice.outcomes[0].feasible);
}

TEST(BlockAdvisorTest, CapSteersChoice) {
  // With an unlimited cap the advisor may pick a plan needing more memory;
  // capping at the smallest config's plan-0 footprint forces a feasible
  // pick whose memory honors the cap.
  auto cands = AddMulFamily({6000, 12000});
  OptimizerOptions unlimited;
  auto a1 = OptimizeWithBlockSizes(cands, unlimited);
  ASSERT_GE(a1.best_candidate, 0);
  OptimizerOptions capped;
  capped.memory_cap_bytes =
      int64_t{700} * 1000 * 1000;  // below the 12000-row working set
  auto a2 = OptimizeWithBlockSizes(cands, capped);
  for (const auto& o : a2.outcomes) {
    if (o.feasible) {
      EXPECT_LE(o.best_plan.cost.peak_memory_bytes, capped.memory_cap_bytes);
    }
  }
}

}  // namespace
}  // namespace riot
