// The block access script must be a faithful lowering of the realized plan:
// same access order as the engine's two-pass walk, saved/retention flags
// matching the realization, and read->write dependence positions that a
// prefetcher can trust.
#include "core/access_plan.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "analysis/coaccess.h"
#include "core/schedule_solver.h"
#include "ops/workload.h"

namespace riot {
namespace {

const CoAccess* Find(const std::vector<CoAccess>& list, const Program& p,
                     const std::string& label) {
  for (const auto& ca : list) {
    if (ca.Label(p) == label) return &ca;
  }
  return nullptr;
}

TEST(AccessScriptTest, OrderedPerInstanceReadsThenWrite) {
  Workload w = MakeExample1(2, 3, 2);
  RealizedPlan rp = RealizePlan(w.program, w.program.original_schedule(), {});
  AccessScript s = BuildAccessScript(w.program, rp);

  ASSERT_EQ(s.per_pos.size(), rp.order.size());
  EXPECT_EQ(s.num_groups, rp.num_groups);
  size_t covered = 0;
  for (size_t pos = 0; pos < s.per_pos.size(); ++pos) {
    auto [begin, end] = s.per_pos[pos];
    EXPECT_EQ(begin, covered);
    bool seen_write = false;
    for (uint32_t i = begin; i < end; ++i) {
      const BlockAccessRecord& r = s.records[i];
      EXPECT_EQ(r.pos, pos);
      EXPECT_EQ(r.group, rp.group_of[pos]);
      EXPECT_EQ(r.stmt_id, rp.order[pos].stmt_id);
      if (r.type == AccessType::kWrite) {
        seen_write = true;
      } else {
        EXPECT_FALSE(seen_write) << "read after write within instance";
      }
      EXPECT_GT(r.bytes, 0);
    }
    covered = end;
  }
  EXPECT_EQ(covered, s.records.size());
  EXPECT_GT(s.max_instance_bytes, 0);
}

TEST(AccessScriptTest, SavedFlagsMatchRealization) {
  Workload w = MakeExample1(2, 3, 1);
  AnalysisResult a = AnalyzeProgram(w.program);
  ScheduleSolver solver(w.program, a.dependences);
  std::vector<const CoAccess*> q = {
      Find(a.sharing, w.program, "s1WC->s2RC"),
      Find(a.sharing, w.program, "s2WE->s2RE"),
      Find(a.sharing, w.program, "s2WE->s2WE")};
  for (auto* o : q) ASSERT_NE(o, nullptr);
  auto sched = solver.FindSchedule(q);
  ASSERT_TRUE(sched.has_value());
  RealizedPlan rp = RealizePlan(w.program, *sched, q);
  AccessScript s = BuildAccessScript(w.program, rp);

  size_t saved_reads = 0, saved_writes = 0;
  for (const auto& r : s.records) {
    if (r.type == AccessType::kRead && r.saved) ++saved_reads;
    if (r.type == AccessType::kWrite && r.saved) ++saved_writes;
  }
  EXPECT_EQ(saved_reads, rp.saved_reads.size());
  EXPECT_EQ(saved_writes, rp.saved_writes.size() + rp.elided_writes.size());

  // Every retention span's source position carries the retention.
  std::map<std::tuple<size_t, int, int64_t>, int64_t> want;
  for (const auto& span : rp.spans) {
    auto key = std::make_tuple(span.begin_pos, span.array_id, span.block);
    want[key] = std::max(want.count(key) ? want[key] : int64_t{-1},
                         static_cast<int64_t>(span.end_group));
  }
  std::set<std::tuple<size_t, int, int64_t>> got;
  for (const auto& r : s.records) {
    if (r.retain_until_group < 0) continue;
    auto key = std::make_tuple(r.pos, r.array_id, r.block);
    auto it = want.find(key);
    ASSERT_NE(it, want.end());
    EXPECT_EQ(r.retain_until_group, it->second);
    got.insert(key);
  }
  EXPECT_EQ(got.size(), want.size());
}

TEST(AccessScriptTest, ReadDependsOnLatestEarlierWrite) {
  // Example1: s1 writes C[i,j]; s2 reads C[i,j] later. Every C-read record
  // must point at the position of the latest earlier C-write; A/B/D reads
  // (never written) carry no dependence.
  Workload w = MakeExample1(2, 2, 2);
  RealizedPlan rp = RealizePlan(w.program, w.program.original_schedule(), {});
  AccessScript s = BuildAccessScript(w.program, rp);

  std::map<std::pair<int, int64_t>, int64_t> last_write;
  for (const auto& r : s.records) {
    if (r.type == AccessType::kRead) {
      auto it = last_write.find({r.array_id, r.block});
      int64_t want = it == last_write.end() ? -1 : it->second;
      EXPECT_EQ(r.dep_pos, want)
          << "array " << r.array_id << " block " << r.block;
      if (want >= 0) EXPECT_LT(static_cast<size_t>(want), r.pos);
    } else {
      last_write[{r.array_id, r.block}] = static_cast<int64_t>(r.pos);
    }
  }
  // The C array (id 2) is written by s1 and re-read by s2: at least one
  // read record must carry a real dependence.
  bool any_dep = false;
  for (const auto& r : s.records) {
    if (r.type == AccessType::kRead && r.dep_pos >= 0) any_dep = true;
  }
  EXPECT_TRUE(any_dep);
}

// ---------------------------------------------------------------------------
// Instance dependence DAG (BuildInstanceDag): the partial order the parallel
// executor dispatches against.
// ---------------------------------------------------------------------------

// Transitive "p happens-before q" over the DAG (positions are topological).
std::vector<std::vector<bool>> Reachability(const InstanceDag& dag) {
  const size_t n = dag.succ.size();
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  for (size_t p = n; p-- > 0;) {
    for (uint32_t s : dag.succ[p]) {
      reach[p][s] = true;
      for (size_t q = 0; q < n; ++q) {
        if (reach[s][q]) reach[p][q] = true;
      }
    }
  }
  return reach;
}

TEST(InstanceDagTest, EdgesForwardAndConsistent) {
  Workload w = MakeExample1(2, 3, 2);
  RealizedPlan rp = RealizePlan(w.program, w.program.original_schedule(), {});
  AccessScript s = BuildAccessScript(w.program, rp);
  InstanceDag dag = BuildInstanceDag(s);

  ASSERT_EQ(dag.succ.size(), rp.order.size());
  ASSERT_EQ(dag.pred_count.size(), rp.order.size());
  std::vector<uint32_t> indeg(rp.order.size(), 0);
  for (size_t p = 0; p < dag.succ.size(); ++p) {
    for (size_t i = 0; i < dag.succ[p].size(); ++i) {
      uint32_t q = dag.succ[p][i];
      EXPECT_GT(q, p) << "edge must point forward";
      if (i > 0) EXPECT_GT(q, dag.succ[p][i - 1]) << "sorted, deduplicated";
      ++indeg[q];
    }
  }
  for (size_t q = 0; q < indeg.size(); ++q) {
    EXPECT_EQ(indeg[q], dag.pred_count[q]) << "pos " << q;
  }
  EXPECT_GE(dag.critical_path, 1u);
  EXPECT_GE(dag.max_width, 1u);
  EXPECT_LE(dag.critical_path * 1u, rp.order.size());
}

TEST(InstanceDagTest, ClassicConflictsAreOrdered) {
  // Brute force over the script: any two instances touching the same block
  // with at least one kernel write must be ordered in the DAG.
  Workload w = MakeExample1(2, 2, 2);
  RealizedPlan rp = RealizePlan(w.program, w.program.original_schedule(), {});
  AccessScript s = BuildAccessScript(w.program, rp);
  InstanceDag dag = BuildInstanceDag(s);
  auto reach = Reachability(dag);

  size_t conflicts = 0;
  for (const auto& a : s.records) {
    for (const auto& b : s.records) {
      if (a.pos >= b.pos) continue;
      if (a.array_id != b.array_id || a.block != b.block) continue;
      if (a.type != AccessType::kWrite && b.type != AccessType::kWrite) {
        continue;
      }
      ++conflicts;
      EXPECT_TRUE(reach[a.pos][b.pos])
          << "unordered conflict: pos " << a.pos << " -> " << b.pos
          << " array " << a.array_id << " block " << a.block;
    }
  }
  EXPECT_GT(conflicts, 0u) << "example1 must have real dependences";
}

TEST(InstanceDagTest, SavedReadOrderedAfterMaterializer) {
  // Under a realized plan, every saved read must be ordered after the
  // access that brought its block into memory (last write or non-saved
  // read) — even when that materializer is itself a read (R->R sharing).
  Workload w = MakeExample1(2, 3, 1);
  AnalysisResult a = AnalyzeProgram(w.program);
  ScheduleSolver solver(w.program, a.dependences);
  std::vector<const CoAccess*> q = {
      Find(a.sharing, w.program, "s1WC->s2RC"),
      Find(a.sharing, w.program, "s2WE->s2RE"),
      Find(a.sharing, w.program, "s2WE->s2WE")};
  for (auto* o : q) ASSERT_NE(o, nullptr);
  auto sched = solver.FindSchedule(q);
  ASSERT_TRUE(sched.has_value());
  RealizedPlan rp = RealizePlan(w.program, *sched, q);
  AccessScript s = BuildAccessScript(w.program, rp);
  InstanceDag dag = BuildInstanceDag(s);
  auto reach = Reachability(dag);

  std::map<std::pair<int, int64_t>, int64_t> materializer;
  size_t saved_checked = 0;
  for (const auto& rec : s.records) {
    auto key = std::make_pair(rec.array_id, rec.block);
    if (rec.type == AccessType::kRead) {
      if (rec.saved) {
        auto it = materializer.find(key);
        ASSERT_NE(it, materializer.end()) << "saved read with no source";
        if (static_cast<size_t>(it->second) != rec.pos) {
          EXPECT_TRUE(reach[static_cast<size_t>(it->second)][rec.pos])
              << "saved read at pos " << rec.pos
              << " unordered after materializer at " << it->second;
          ++saved_checked;
        }
      } else {
        materializer[key] = static_cast<int64_t>(rec.pos);
      }
    } else {
      materializer[key] = static_cast<int64_t>(rec.pos);
    }
  }
  EXPECT_GT(saved_checked, 0u);
}

TEST(InstanceDagTest, IndependentInstancesExposeWidth) {
  // 2mm: instances with distinct output blocks and disjoint accumulation
  // chains are unordered — the DAG must expose real parallelism.
  Workload w = MakeTwoMatMul(TwoMatMulConfig::kConfigA, /*scale=*/1000);
  RealizedPlan rp = RealizePlan(w.program, w.program.original_schedule(), {});
  AccessScript s = BuildAccessScript(w.program, rp);
  InstanceDag dag = BuildInstanceDag(s);
  EXPECT_GT(dag.max_width, 1u);
  EXPECT_LT(dag.critical_path, rp.order.size());
}

}  // namespace
}  // namespace riot
