// Cost model tests: I/O accounting against hand-derived counts from the
// paper's Example 1 and memory-requirement behavior.
#include "core/cost_model.h"

#include <gtest/gtest.h>

#include "core/optimizer.h"
#include "core/plan_realization.h"
#include "core/schedule_solver.h"
#include "ops/workload.h"

namespace riot {
namespace {

const CoAccess* Find(const std::vector<CoAccess>& list, const Program& p,
                     const std::string& label) {
  for (const auto& ca : list) {
    if (ca.Label(p) == label) return &ca;
  }
  return nullptr;
}

TEST(CostModelTest, BaselineCountsMatchPaperIntro) {
  // Paper Section 1: "A and B are both read once, C is written once and
  // then read n3 times, D is read n1 times, and E is written n2 times and
  // read n2 - 1 times" (per block).
  const int64_t n1 = 3, n2 = 4, n3 = 2;
  Workload w = MakeExample1(n1, n2, n3);
  PlanCost c = EvaluatePlanCost(w.program, w.program.original_schedule(), {});
  const int64_t blk = w.program.array(0).BlockBytes();
  // Reads: A (n1 n2) + B (n1 n2) + C (n1 n2 n3) + D (n2 n3 * n1) +
  //        E ((n2-1) per block * n1 n3).
  int64_t expect_reads = n1 * n2 * 2 + n1 * n2 * n3 + n2 * n3 * n1 +
                         (n2 - 1) * n1 * n3;
  // Writes: C (n1 n2) + E (n2 per block * n1 n3).
  int64_t expect_writes = n1 * n2 + n2 * n1 * n3;
  EXPECT_EQ(c.baseline_read_bytes, expect_reads * blk);
  EXPECT_EQ(c.baseline_write_bytes, expect_writes * blk);
  // Without sharing, actual == baseline.
  EXPECT_EQ(c.read_bytes, c.baseline_read_bytes);
  EXPECT_EQ(c.write_bytes, c.baseline_write_bytes);
  EXPECT_EQ(c.block_reads, expect_reads);
  EXPECT_EQ(c.block_writes, expect_writes);
}

TEST(CostModelTest, AccumulatorSharingRemovesERoundTrips) {
  // Realizing s2WE->s2RE and s2WE->s2WE keeps E[i,j] in memory for the
  // whole k loop: E is written once and read zero times per block.
  const int64_t n1 = 3, n2 = 4, n3 = 2;
  Workload w = MakeExample1(n1, n2, n3);
  AnalysisResult a = AnalyzeProgram(w.program);
  ScheduleSolver solver(w.program, a.dependences);
  std::vector<const CoAccess*> q = {
      Find(a.sharing, w.program, "s2WE->s2RE"),
      Find(a.sharing, w.program, "s2WE->s2WE")};
  ASSERT_NE(q[0], nullptr);
  ASSERT_NE(q[1], nullptr);
  auto s = solver.FindSchedule(q);
  ASSERT_TRUE(s.has_value());
  PlanCost c = EvaluatePlanCost(w.program, *s, q);
  const int64_t blk = w.program.array(0).BlockBytes();
  // E reads fully eliminated; E writes reduced to one per block.
  int64_t expect_reads = n1 * n2 * 2 + n1 * n2 * n3 + n2 * n3 * n1;
  int64_t expect_writes = n1 * n2 + n1 * n3;
  EXPECT_EQ(c.read_bytes, expect_reads * blk);
  EXPECT_EQ(c.write_bytes, expect_writes * blk);
}

TEST(CostModelTest, PipeliningElidesTemporaryMaterialization) {
  // n3 = 1 with {s1WC->s2RC, E accumulation}: C never hits disk at all
  // (paper footnote 8 / Figure 1(a)).
  const int64_t n1 = 3, n2 = 4, n3 = 1;
  Workload w = MakeExample1(n1, n2, n3);
  AnalysisResult a = AnalyzeProgram(w.program);
  ScheduleSolver solver(w.program, a.dependences);
  std::vector<const CoAccess*> q = {
      Find(a.sharing, w.program, "s1WC->s2RC"),
      Find(a.sharing, w.program, "s2WE->s2RE"),
      Find(a.sharing, w.program, "s2WE->s2WE")};
  for (auto* o : q) ASSERT_NE(o, nullptr);
  auto s = solver.FindSchedule(q);
  ASSERT_TRUE(s.has_value());
  PlanCost c = EvaluatePlanCost(w.program, *s, q);
  const int64_t blk = w.program.array(0).BlockBytes();
  // Reads: A + B + D only. C reads pipelined, E reads eliminated.
  EXPECT_EQ(c.read_bytes, (n1 * n2 * 2 + n2 * n3 * n1) * blk);
  // Writes: E once per block only; C's writes elided entirely.
  EXPECT_EQ(c.write_bytes, n1 * n3 * blk);
}

TEST(CostModelTest, GeneralCaseKeepsCWritesForLaterReads) {
  // n3 = 2 (Figure 1(b)): C must be written at j == 0 because j == 1
  // re-reads it from disk.
  const int64_t n1 = 3, n2 = 4, n3 = 2;
  Workload w = MakeExample1(n1, n2, n3);
  AnalysisResult a = AnalyzeProgram(w.program);
  ScheduleSolver solver(w.program, a.dependences);
  std::vector<const CoAccess*> q = {
      Find(a.sharing, w.program, "s1WC->s2RC"),
      Find(a.sharing, w.program, "s2WE->s2RE"),
      Find(a.sharing, w.program, "s2WE->s2WE")};
  auto s = solver.FindSchedule(q);
  ASSERT_TRUE(s.has_value());
  PlanCost c = EvaluatePlanCost(w.program, *s, q);
  const int64_t blk = w.program.array(0).BlockBytes();
  // C written n1*n2 (kept for the j>0 passes) and read n1*n2*(n3-1).
  int64_t expect_reads =
      n1 * n2 * 2 + n1 * n2 * (n3 - 1) + n2 * n3 * n1;
  int64_t expect_writes = n1 * n2 + n1 * n3;
  EXPECT_EQ(c.read_bytes, expect_reads * blk);
  EXPECT_EQ(c.write_bytes, expect_writes * blk);
  // Savings vs baseline: one pass of reading C (paper Section 1: "save a
  // single pass of reading C") plus all of E's accumulation re-reads.
  EXPECT_EQ(c.baseline_read_bytes - c.read_bytes,
            (n1 * n2 + (n2 - 1) * n1 * n3) * blk);
}

TEST(CostModelTest, MemoryVsIoTradeoff) {
  const int64_t n1 = 3, n2 = 4, n3 = 2;
  Workload w = MakeExample1(n1, n2, n3);
  AnalysisResult a = AnalyzeProgram(w.program);
  ScheduleSolver solver(w.program, a.dependences);
  PlanCost base =
      EvaluatePlanCost(w.program, w.program.original_schedule(), {});
  // Reusing C across j with j innermost (paper Opportunity 2) retains only
  // the currently-used block: big I/O win at (almost) no memory cost.
  std::vector<const CoAccess*> q = {Find(a.sharing, w.program, "s2RC->s2RC")};
  ASSERT_NE(q[0], nullptr);
  auto s = solver.FindSchedule(q);
  ASSERT_TRUE(s.has_value());
  PlanCost c = EvaluatePlanCost(w.program, *s, q);
  EXPECT_GE(c.peak_memory_bytes, base.peak_memory_bytes);
  EXPECT_LT(c.read_bytes, base.read_bytes);
  // The pipelining plan (Figure 1(b)) co-schedules s1 and s2 and must pay
  // for the union of both statements' working sets: memory grows.
  std::vector<const CoAccess*> q2 = {
      Find(a.sharing, w.program, "s1WC->s2RC"),
      Find(a.sharing, w.program, "s2WE->s2RE"),
      Find(a.sharing, w.program, "s2WE->s2WE")};
  auto s2 = solver.FindSchedule(q2);
  ASSERT_TRUE(s2.has_value());
  PlanCost c2 = EvaluatePlanCost(w.program, *s2, q2);
  EXPECT_GT(c2.peak_memory_bytes, base.peak_memory_bytes);
  EXPECT_LT(c2.TotalBytes(), base.TotalBytes());
}

TEST(CostModelTest, IoSecondsUsesAsymmetricRates) {
  Workload w = MakeExample1(2, 2, 1);
  CostModelOptions opt;
  opt.read_mb_per_s = 100.0;
  opt.write_mb_per_s = 50.0;
  PlanCost c =
      EvaluatePlanCost(w.program, w.program.original_schedule(), {}, opt);
  double expect = static_cast<double>(c.read_bytes) / 100e6 +
                  static_cast<double>(c.write_bytes) / 50e6;
  EXPECT_NEAR(c.io_seconds, expect, 1e-12);
  EXPECT_GT(c.baseline_io_seconds, 0.0);
  EXPECT_NEAR(c.SavingsFraction(), 0.0, 1e-12);
}

TEST(PlanRealizationTest, GroupsFollowTimePrefix) {
  Workload w = MakeExample1(2, 2, 1);
  RealizedPlan rp = RealizePlan(w.program, w.program.original_schedule(), {});
  // Original schedule: every instance has a distinct time prefix except
  // statements sharing the final constant dimension — with sequential
  // nests, s1 and s2 instances never share a group.
  ASSERT_EQ(rp.order.size(), rp.group_of.size());
  for (size_t i = 1; i < rp.order.size(); ++i) {
    EXPECT_GE(rp.group_of[i], rp.group_of[i - 1]);
  }
  EXPECT_EQ(rp.saved_reads.size(), 0u);
  EXPECT_EQ(rp.spans.size(), 0u);
}

TEST(CacheSimTest, LooseCapMatchesLinearModelAndTightCapAddsReads) {
  const int64_t n1 = 3, n2 = 4, n3 = 2;
  Workload w = MakeExample1(n1, n2, n3);
  PlanCost c = EvaluatePlanCost(w.program, w.program.original_schedule(), {});
  // Plan-exact replay at any cap reproduces the linear sharing model's
  // I/O exactly (reads are plan-determined, not residency-determined).
  CacheSimOptions sim;
  sim.cap_bytes = int64_t{1} << 30;
  auto loose =
      SimulateCacheBehavior(w.program, w.program.original_schedule(), {}, sim);
  ASSERT_TRUE(loose.ok());
  EXPECT_EQ(loose->block_reads, c.block_reads);
  EXPECT_EQ(loose->block_writes, c.block_writes);
  EXPECT_EQ(loose->evictions, 0);
  EXPECT_EQ(loose->dirty_writebacks, 0);
  // The opportunistic ablation with unbounded memory reads each block at
  // most once; a tight cap must cost strictly more reads under LRU.
  sim.opportunistic = true;
  auto huge =
      SimulateCacheBehavior(w.program, w.program.original_schedule(), {}, sim);
  ASSERT_TRUE(huge.ok());
  sim.cap_bytes = c.peak_memory_bytes;
  auto tight =
      SimulateCacheBehavior(w.program, w.program.original_schedule(), {}, sim);
  ASSERT_TRUE(tight.ok());
  EXPECT_GT(tight->block_reads, huge->block_reads);
  EXPECT_GT(tight->evictions, 0);
  // Belady at the same cap never reads more than LRU.
  sim.policy = ReplacementKind::kScheduleOpt;
  auto opt =
      SimulateCacheBehavior(w.program, w.program.original_schedule(), {}, sim);
  ASSERT_TRUE(opt.ok());
  EXPECT_LE(opt->block_reads, tight->block_reads);
}

TEST(CacheSimTest, SimulationFailsBelowInstanceFootprint) {
  Workload w = MakeExample1(2, 2, 1);
  CacheSimOptions sim;
  sim.cap_bytes = w.program.array(0).BlockBytes();  // one frame: too small
  sim.opportunistic = true;
  auto r =
      SimulateCacheBehavior(w.program, w.program.original_schedule(), {}, sim);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(CostModelTest, PressureCapRanksPlansWhenNoneFits) {
  // With a cap below every plan's exact requirement, the optimizer falls
  // back to the cache simulator's capped projection instead of silently
  // returning the original schedule.
  Workload w = MakeExample1(3, 4, 2);
  OptimizerOptions opts;
  opts.memory_cap_bytes = 1;  // nothing fits exactly
  opts.cost.pressure_cap_bytes = EvaluatePlanCost(
      w.program, w.program.original_schedule(), {}).peak_memory_bytes;
  OptimizationResult r = Optimize(w.program, opts);
  const Plan& best = r.best();
  ASSERT_GE(best.cost.capped_block_reads, 0);
  // The chosen plan minimizes the simulated capped I/O time.
  for (const Plan& p : r.plans) {
    if (p.cost.capped_block_reads < 0) continue;
    EXPECT_LE(best.cost.capped_io_seconds, p.cost.capped_io_seconds);
  }
}

TEST(PlanRealizationTest, WWSaveRequiresMemoryServedReadsBetween) {
  // Realizing only s2WE->s2WE (without s2WE->s2RE) must NOT save the first
  // write, because the read between the two writes would see stale data.
  Workload w = MakeExample1(2, 2, 1);
  AnalysisResult a = AnalyzeProgram(w.program);
  ScheduleSolver solver(w.program, a.dependences);
  const CoAccess* ww = Find(a.sharing, w.program, "s2WE->s2WE");
  ASSERT_NE(ww, nullptr);
  auto s = solver.FindSchedule({ww});
  ASSERT_TRUE(s.has_value());
  RealizedPlan rp = RealizePlan(w.program, *s, {ww});
  EXPECT_TRUE(rp.saved_writes.empty());
  // With the companion W->R realized, the W->W saves kick in.
  const CoAccess* wr = Find(a.sharing, w.program, "s2WE->s2RE");
  auto s2 = solver.FindSchedule({ww, wr});
  ASSERT_TRUE(s2.has_value());
  RealizedPlan rp2 = RealizePlan(w.program, *s2, {ww, wr});
  EXPECT_FALSE(rp2.saved_writes.empty());
}

}  // namespace
}  // namespace riot
