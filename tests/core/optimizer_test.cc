// Optimizer (Apriori search, Lemma 2) tests.
#include "core/optimizer.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "ops/workload.h"

namespace riot {
namespace {

TEST(OptimizerTest, PlanZeroIsOriginal) {
  Workload w = MakeExample1(2, 3, 2);
  OptimizationResult r = Optimize(w.program);
  ASSERT_FALSE(r.plans.empty());
  EXPECT_TRUE(r.plans[0].opportunities.empty());
  EXPECT_EQ(r.plans[0].cost.read_bytes, r.plans[0].cost.baseline_read_bytes);
}

TEST(OptimizerTest, AprioriAndExhaustiveAgree) {
  // Lemma 2 (antimonotonicity) makes Apriori pruning lossless: both modes
  // must find exactly the same feasible opportunity sets.
  Workload w = MakeExample1(2, 3, 2);
  OptimizerOptions apriori;
  apriori.use_apriori = true;
  OptimizerOptions exhaustive;
  exhaustive.use_apriori = false;
  auto ra = Optimize(w.program, apriori);
  auto re = Optimize(w.program, exhaustive);
  std::set<std::vector<int>> sa, se;
  for (const auto& p : ra.plans) sa.insert(p.opportunities);
  for (const auto& p : re.plans) se.insert(p.opportunities);
  EXPECT_EQ(sa, se);
  EXPECT_GE(ra.candidates_pruned, 0);
  EXPECT_LE(ra.candidates_tested, re.candidates_tested);
}

TEST(OptimizerTest, BestPlanRespectsMemoryCap) {
  Workload w = MakeExample1(3, 4, 2);
  OptimizerOptions unlimited;
  auto r1 = Optimize(w.program, unlimited);
  const Plan& unconstrained_best = r1.best();
  // Now cap memory at just below the unconstrained best's requirement; the
  // chosen plan must fit and can only be costlier.
  OptimizerOptions capped;
  capped.memory_cap_bytes = unconstrained_best.cost.peak_memory_bytes - 1;
  auto r2 = Optimize(w.program, capped);
  EXPECT_LE(r2.best().cost.peak_memory_bytes, capped.memory_cap_bytes);
  EXPECT_GE(r2.best().cost.io_seconds, unconstrained_best.cost.io_seconds);
}

TEST(OptimizerTest, ConcurrentSessionsHintSelectsAgainstPerSessionSlice) {
  // N concurrent sessions share the pool: a cap that admits the
  // unconstrained best for one session must be divided by N, so the hint
  // must pick the same plan a solo run under cap/N would pick.
  Workload w = MakeExample1(3, 4, 2);
  OptimizerOptions unlimited;
  auto r1 = Optimize(w.program, unlimited);
  const int64_t best_peak = r1.best().cost.peak_memory_bytes;

  OptimizerOptions hinted;
  hinted.memory_cap_bytes = 4 * best_peak - 1;  // whole pool: would fit
  hinted.concurrent_sessions = 4;               // per-session slice: won't
  auto r2 = Optimize(w.program, hinted);
  EXPECT_LE(r2.best().cost.peak_memory_bytes,
            hinted.memory_cap_bytes / hinted.concurrent_sessions);

  OptimizerOptions solo_slice;
  solo_slice.memory_cap_bytes = hinted.memory_cap_bytes / 4;
  auto r3 = Optimize(w.program, solo_slice);
  EXPECT_EQ(r2.best().opportunities, r3.best().opportunities);
}

TEST(OptimizerTest, BestPlanNeverWorseThanOriginal) {
  for (auto [n1, n2, n3] : {std::tuple<int64_t, int64_t, int64_t>{2, 2, 1},
                            {3, 2, 2},
                            {2, 4, 3}}) {
    Workload w = MakeExample1(n1, n2, n3);
    auto r = Optimize(w.program);
    EXPECT_LE(r.best().cost.io_seconds, r.plans[0].cost.io_seconds);
  }
}

TEST(OptimizerTest, SavingsComeFromRealizedOpportunities) {
  Workload w = MakeExample1(3, 3, 2);
  auto r = Optimize(w.program);
  for (const auto& p : r.plans) {
    if (p.opportunities.empty()) {
      EXPECT_EQ(p.cost.TotalBytes(),
                p.cost.baseline_read_bytes + p.cost.baseline_write_bytes);
    } else {
      EXPECT_LE(p.cost.TotalBytes(),
                p.cost.baseline_read_bytes + p.cost.baseline_write_bytes);
    }
  }
}

TEST(OptimizerTest, SupersetNeverReadsMoreButMayUseMoreMemory) {
  // Adding an opportunity to a feasible set only adds savings (union
  // semantics) at possibly higher memory cost.
  Workload w = MakeExample1(2, 3, 2);
  auto r = Optimize(w.program);
  std::map<std::vector<int>, const Plan*> by_set;
  for (const auto& p : r.plans) by_set[p.opportunities] = &p;
  for (const auto& [set, plan] : by_set) {
    for (const auto& [superset, splan] : by_set) {
      if (superset.size() != set.size() + 1) continue;
      if (!std::includes(superset.begin(), superset.end(), set.begin(),
                         set.end())) {
        continue;
      }
      EXPECT_LE(splan->cost.TotalBytes(), plan->cost.TotalBytes())
          << "superset lost savings";
    }
  }
}

TEST(OptimizerTest, MaxCombinationSizeCapsSearch) {
  Workload w = MakeExample1(2, 3, 2);
  OptimizerOptions opts;
  opts.max_combination_size = 1;
  auto r = Optimize(w.program, opts);
  for (const auto& p : r.plans) {
    EXPECT_LE(p.opportunities.size(), 1u);
  }
}

TEST(OptimizerTest, StatsArePopulated) {
  Workload w = MakeExample1(2, 2, 2);
  auto r = Optimize(w.program);
  EXPECT_GT(r.candidates_tested, 0);
  EXPECT_GT(r.schedules_found, 0);
  EXPECT_GT(r.optimize_seconds, 0.0);
  EXPECT_EQ(r.schedules_found + 1, static_cast<int64_t>(r.plans.size()));
}

TEST(OptimizerTest, SingleThreadMatchesParallel) {
  Workload w = MakeExample1(2, 3, 2);
  OptimizerOptions serial;
  serial.num_threads = 1;
  OptimizerOptions parallel;
  parallel.num_threads = 8;
  auto rs = Optimize(w.program, serial);
  auto rp = Optimize(w.program, parallel);
  std::set<std::vector<int>> ss, sp;
  for (const auto& p : rs.plans) ss.insert(p.opportunities);
  for (const auto& p : rp.plans) sp.insert(p.opportunities);
  EXPECT_EQ(ss, sp);
}

TEST(OptimizerTest, AblationNoMultiplicityReductionStillSound) {
  Workload w = MakeExample1(2, 2, 2);
  OptimizerOptions opts;
  opts.analysis.multiplicity_reduction = false;
  opts.max_combination_size = 2;  // keep the blowup in check
  auto r = Optimize(w.program, opts);
  // Plans still legal: best never worse than original.
  EXPECT_LE(r.best().cost.io_seconds, r.plans[0].cost.io_seconds);
}

TEST(OptimizerTest, CalibratedComputeRatesRankByIoPlusCompute) {
  // The calibrate_compute_rates flag measures this host's kernel rates
  // once and prices plans by io + compute; without it (and without a
  // caller-set rate table) ranking is I/O-only and compute_seconds stays
  // zero. Feasibility (the opportunity sets) must not change -- only the
  // ranking inputs do.
  Workload w = MakeExample1(2, 3, 2);
  OptimizerOptions plain;
  OptimizerOptions calibrated;
  calibrated.calibrate_compute_rates = true;
  calibrated.calibrate_budget_ms = 20;  // keep the one-time probe cheap
  auto rp = Optimize(w.program, plain);
  auto rc = Optimize(w.program, calibrated);

  ASSERT_FALSE(rp.plans.empty());
  ASSERT_FALSE(rc.plans.empty());
  for (const auto& p : rp.plans) {
    EXPECT_EQ(p.cost.compute_seconds, 0.0);
  }
  bool any_compute = false;
  for (const auto& p : rc.plans) {
    EXPECT_GE(p.cost.compute_seconds, 0.0);
    any_compute |= p.cost.compute_seconds > 0;
    EXPECT_DOUBLE_EQ(p.cost.TotalSeconds(),
                     p.cost.io_seconds + p.cost.compute_seconds);
  }
  EXPECT_TRUE(any_compute);

  std::set<std::vector<int>> sp, sc;
  for (const auto& p : rp.plans) sp.insert(p.opportunities);
  for (const auto& p : rc.plans) sc.insert(p.opportunities);
  EXPECT_EQ(sp, sc);

  // A caller-set rate table wins over calibration (the flag only fills a
  // missing table), so explicit tables remain reproducible across hosts.
  KernelRateTable fixed;
  fixed.elementwise_gflops = 1.0;
  fixed.gemm_gflops = 1.0;
  OptimizerOptions manual = calibrated;
  manual.cost.compute = fixed;
  auto rm1 = Optimize(w.program, manual);
  auto rm2 = Optimize(w.program, manual);
  ASSERT_EQ(rm1.plans.size(), rm2.plans.size());
  for (size_t i = 0; i < rm1.plans.size(); ++i) {
    EXPECT_DOUBLE_EQ(rm1.plans[i].cost.compute_seconds,
                     rm2.plans[i].cost.compute_seconds);
  }
}

}  // namespace
}  // namespace riot
