// Lowering: expression DAG -> blocked static-control Program. Asserts the
// emitted domains, affine accesses, guards, op specs, scratch marking,
// duplicate-read collapsing, and CSE materialization.
#include "core/lowering.h"

#include <gtest/gtest.h>

#include "core/optimizer.h"
#include "ir/expr.h"

namespace riot {
namespace {

LoweredExpr MustLower(const ExprGraph& g, const std::vector<ExprRef>& outs) {
  auto r = LowerExpr(g, outs);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).ValueOrDie();
}

TEST(LoweringTest, Example1StructureMatchesHandBuiltForm) {
  // C = A + B; E = C D over a 4x3 / 3x2 grid: the classic Example 1.
  ExprGraph g;
  ExprRef a = g.Input("A", {4, 3}, {8, 8});
  ExprRef b = g.Input("B", {4, 3}, {8, 8});
  ExprRef c = g.Add(a, b);
  ExprRef d = g.Input("D", {3, 2}, {8, 8});
  ExprRef e = g.Gemm(c, d);
  LoweredExpr lo = MustLower(g, {e});
  const Program& p = lo.program;

  // Arrays in node order: A, B, C, D, E; only the bound output and the
  // inputs are persistent.
  ASSERT_EQ(p.arrays().size(), 5u);
  EXPECT_EQ(p.array(2).name, "t2");
  EXPECT_FALSE(p.array(2).persistent);  // scratch temporary
  EXPECT_TRUE(p.array(4).persistent);   // output
  EXPECT_EQ(lo.input_arrays, (std::vector<int>{0, 1, 3}));
  EXPECT_EQ(lo.output_arrays, (std::vector<int>{4}));

  ASSERT_EQ(p.statements().size(), 2u);
  const Statement& s1 = p.statement(0);
  EXPECT_EQ(s1.name, "s1");
  EXPECT_EQ(s1.iters, (std::vector<std::string>{"i", "j"}));
  ASSERT_EQ(s1.accesses.size(), 3u);  // read A, read B, write C
  ASSERT_TRUE(s1.op.has_value());
  EXPECT_EQ(s1.op->kind, StatementOp::Kind::kAdd);
  EXPECT_EQ(s1.op->a, 0);
  EXPECT_EQ(s1.op->b, 1);
  EXPECT_EQ(s1.op->out, 2);

  const Statement& s2 = p.statement(1);
  EXPECT_EQ(s2.iters, (std::vector<std::string>{"i", "j", "k"}));
  // read C[i,k], read D[k,j], guarded read E[i,j] (k >= 1), write E[i,j].
  ASSERT_EQ(s2.accesses.size(), 4u);
  EXPECT_FALSE(s2.accesses[0].guard.has_value());
  ASSERT_TRUE(s2.accesses[2].guard.has_value());
  EXPECT_FALSE(s2.accesses[2].guard->Contains({0, 0, 0}));
  EXPECT_TRUE(s2.accesses[2].guard->Contains({0, 0, 1}));
  ASSERT_TRUE(s2.op.has_value());
  EXPECT_EQ(s2.op->kind, StatementOp::Kind::kGemm);
  EXPECT_EQ(s2.op->reduction_iter, 2);
  EXPECT_EQ(s2.op->acc, 2);
  EXPECT_EQ(s2.op->out, 3);
  // Block subscripts: C at [i, k], D at [k, j].
  EXPECT_EQ(s2.accesses[0].BlockAt({2, 1, 0}), (BlockCoord{2, 0}));
  EXPECT_EQ(s2.accesses[1].BlockAt({2, 1, 0}), (BlockCoord{0, 1}));
}

TEST(LoweringTest, UnitGridDimsAreDroppedFromDomains) {
  // U = X'X over a 25x1 grid: one reduction loop, not three.
  ExprGraph g;
  ExprRef x = g.Input("X", {25, 1}, {16, 4});
  ExprRef u = g.Gemm(x, x, {true});
  LoweredExpr lo = MustLower(g, {u});
  const Statement& s1 = lo.program.statement(0);
  ASSERT_EQ(s1.depth(), 1u);
  EXPECT_EQ(s1.iters[0], "k");
  EXPECT_EQ(s1.op->reduction_iter, 0);
  // X read once even though the op views it twice (same array, same map).
  ASSERT_EQ(s1.accesses.size(), 3u);  // read X, guarded read U, write U
  EXPECT_EQ(s1.op->a, 0);
  EXPECT_EQ(s1.op->b, 0);
  EXPECT_EQ(s1.op->acc, 1);
  EXPECT_EQ(s1.op->out, 2);

  // All-unit roles degenerate to a single {0..0} loop.
  ExprGraph g2;
  ExprRef sq = g2.Input("S", {1, 1}, {4, 4});
  ExprRef inv = g2.Inverse(sq);
  LoweredExpr lo2 = MustLower(g2, {inv});
  const Statement& si = lo2.program.statement(0);
  EXPECT_EQ(si.iters, (std::vector<std::string>{"z"}));
  EXPECT_EQ(si.domain.EnumerateIntegerPoints().size(), 1u);
}

TEST(LoweringTest, SumSquaresLowersToGuardedReduction) {
  ExprGraph g;
  ExprRef x = g.Input("X", {6, 2}, {8, 3});
  ExprRef ss = g.SumSquares(x);
  LoweredExpr lo = MustLower(g, {ss});
  const Statement& s = lo.program.statement(0);
  EXPECT_EQ(s.iters, (std::vector<std::string>{"j", "k"}));
  ASSERT_EQ(s.accesses.size(), 3u);
  // X at [k, j]; result at [0, j].
  EXPECT_EQ(s.accesses[0].BlockAt({1, 4}), (BlockCoord{4, 1}));
  EXPECT_EQ(s.accesses[2].BlockAt({1, 4}), (BlockCoord{0, 1}));
  ASSERT_TRUE(s.accesses[1].guard.has_value());
  EXPECT_EQ(s.op->kind, StatementOp::Kind::kSumSquares);
  EXPECT_EQ(s.op->reduction_iter, 1);
}

TEST(LoweringTest, CseSharedNodeMaterializedOnce) {
  // Ridge-style: (X'X + l1 I)^-1 and (X'X + l2 I)^-1 share one X'X.
  ExprGraph g;
  ExprRef x = g.Input("X", {4, 1}, {8, 8});
  std::vector<ExprRef> outs;
  for (double lambda : {1.0, 2.0}) {
    ExprRef gram = g.Gemm(x, x, {true});
    outs.push_back(g.Inverse(g.AddDiag(gram, lambda)));
  }
  EXPECT_EQ(g.cse_hits(), 1);
  LoweredExpr lo = MustLower(g, outs);
  // X'X once, two AddDiags, two Inverses.
  ASSERT_EQ(lo.program.statements().size(), 5u);
  int gemms = 0;
  for (const Statement& s : lo.program.statements()) {
    gemms += s.op->kind == StatementOp::Kind::kGemm ? 1 : 0;
  }
  EXPECT_EQ(gemms, 1);
  // Both AddDiag statements read the single gram array.
  const int gram_arr = lo.array_of[1];
  EXPECT_EQ(lo.program.statement(1).accesses[0].array_id, gram_arr);
  EXPECT_EQ(lo.program.statement(3).accesses[0].array_id, gram_arr);
}

TEST(LoweringTest, KeepMakesTemporaryPersistent) {
  ExprGraph g;
  ExprRef a = g.Input("A", {2, 2}, {4, 4});
  ExprRef s = g.Add(a, a);
  ExprRef t = g.Sub(s, a);
  g.Keep(s);
  LoweredExpr lo = MustLower(g, {t});
  EXPECT_TRUE(lo.program.array(lo.array_of[1]).persistent);   // kept
  EXPECT_TRUE(lo.program.array(lo.array_of[2]).persistent);   // output
}

TEST(LoweringTest, RejectsBadOutputLists) {
  ExprGraph g;
  ExprRef a = g.Input("A", {2, 2}, {4, 4});
  ExprRef s = g.Add(a, a);
  EXPECT_FALSE(LowerExpr(g, {}).ok());
  EXPECT_FALSE(LowerExpr(g, {a}).ok());      // input as output
  EXPECT_FALSE(LowerExpr(g, {s, s}).ok());   // duplicate
  EXPECT_FALSE(LowerExpr(g, {99}).ok());     // out of range
  EXPECT_TRUE(LowerExpr(g, {s}).ok());
}

TEST(LoweringTest, RejectsDuplicateArrayNames) {
  // Array names become store file names; a collision would alias two
  // arrays onto one file.
  ExprGraph g;
  ExprRef a = g.Input("A", {2, 2}, {4, 4});
  ExprRef s = g.Add(a, a);
  ExprRef t = g.Sub(s, a);
  g.SetName(s, "A");  // collides with the input
  EXPECT_FALSE(LowerExpr(g, {t}).ok());
  g.SetName(s, "t2");  // collides with t's auto-generated temp name
  EXPECT_FALSE(LowerExpr(g, {t}).ok());
  g.SetName(s, "S");
  EXPECT_TRUE(LowerExpr(g, {t}).ok());
}

TEST(LoweringTest, LoweredProgramsOptimizeEndToEnd) {
  // The lowered IR must be a first-class citizen of the whole pipeline:
  // analysis finds the C producer-consumer sharing, and the optimizer
  // returns plans realizing it.
  ExprGraph g;
  ExprRef a = g.Input("A", {3, 3}, {4, 4});
  ExprRef b = g.Input("B", {3, 3}, {4, 4});
  ExprRef c = g.Add(a, b);
  ExprRef d = g.Input("D", {3, 2}, {4, 4});
  ExprRef e = g.Gemm(c, d);
  LoweredExpr lo = MustLower(g, {e});
  OptimizationResult r = Optimize(lo.program);
  EXPECT_GT(r.plans.size(), 1u);
  EXPECT_LT(r.best().cost.TotalBytes(), r.plans[0].cost.TotalBytes());
}

}  // namespace
}  // namespace riot
