// Fusion pass: cluster boundaries and fused lowering structure. Pins the
// rules from core/fusion.h — single-consumer elementwise chains collapse
// into one compound statement; CSE-shared nodes, Keep()-ed nodes, bound
// outputs, non-elementwise producers/consumers, and the tape-length cap
// all break fusion — plus the shape of the emitted tape itself.
#include "core/fusion.h"

#include <gtest/gtest.h>

#include "core/lowering.h"
#include "ir/scalar_ops.h"

namespace riot {
namespace {

LoweredExpr MustLower(const ExprGraph& g, const std::vector<ExprRef>& outs,
                      const LowerOptions& opts = {}) {
  auto r = LowerExpr(g, outs, opts);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).ValueOrDie();
}

int ScratchArrays(const Program& p) {
  int scratch = 0;
  for (const ArrayInfo& a : p.arrays()) scratch += a.persistent ? 0 : 1;
  return scratch;
}

TEST(FusionTest, ChainCollapsesToOneStatement) {
  // Scale(Sub(Add(x, y), y), 3): four fusable nodes, single consumers
  // throughout -> one compound statement, zero scratch arrays.
  ExprGraph g;
  ExprRef x = g.Input("X", {2, 2}, {4, 4});
  ExprRef y = g.Input("Y", {2, 2}, {4, 4});
  ExprRef t = g.Scale(g.Sub(g.Add(x, y), y), 3.0);
  LoweredExpr lo = MustLower(g, {t});

  ASSERT_EQ(lo.program.statements().size(), 1u);
  EXPECT_EQ(lo.program.arrays().size(), 3u);  // X, Y, output only
  EXPECT_EQ(ScratchArrays(lo.program), 0);
  EXPECT_EQ(lo.fused_nodes, 2);

  const Statement& st = lo.program.statement(0);
  ASSERT_TRUE(st.op.has_value());
  EXPECT_EQ(st.op->kind, StatementOp::Kind::kFused);
  // Tape: load x, load y, add, sub (y deduped onto the same load), scale.
  ASSERT_EQ(st.op->tape.size(), 5u);
  EXPECT_EQ(st.op->tape[0].code, TapeOp::Code::kLoad);
  EXPECT_EQ(st.op->tape[1].code, TapeOp::Code::kLoad);
  EXPECT_EQ(st.op->tape[2].code, TapeOp::Code::kAdd);
  EXPECT_EQ(st.op->tape[3].code, TapeOp::Code::kSub);
  EXPECT_EQ(st.op->tape[3].b, 1);  // reuses y's load position
  EXPECT_EQ(st.op->tape[4].code, TapeOp::Code::kScale);
  EXPECT_EQ(st.op->tape[4].alpha, 3.0);
  // Accesses: read X, read Y (once), write out.
  EXPECT_EQ(st.accesses.size(), 3u);
  EXPECT_EQ(st.op->out, 2);

  // Fused-away nodes have no array but map to the compound statement.
  const ExprRef add = g.Add(x, y);  // CSE returns the existing node
  EXPECT_EQ(lo.array_of[static_cast<size_t>(add)], -1);
  EXPECT_EQ(lo.stmt_of[static_cast<size_t>(add)], lo.stmt_of[t]);
}

TEST(FusionTest, FuseOffRestoresPerNodeLowering) {
  ExprGraph g;
  ExprRef x = g.Input("X", {2, 2}, {4, 4});
  ExprRef y = g.Input("Y", {2, 2}, {4, 4});
  ExprRef t = g.Scale(g.Sub(g.Add(x, y), y), 3.0);
  LowerOptions off;
  off.fuse = false;
  LoweredExpr lo = MustLower(g, {t}, off);
  EXPECT_EQ(lo.program.statements().size(), 3u);
  EXPECT_EQ(lo.program.arrays().size(), 5u);
  EXPECT_EQ(ScratchArrays(lo.program), 2);
  EXPECT_EQ(lo.fused_nodes, 0);
  EXPECT_EQ(lo.program.statement(0).op->kind, StatementOp::Kind::kAdd);
}

TEST(FusionTest, CseSharedNodeBreaksFusion) {
  // p = Add(x, y) feeds two distinct consumers: it must stay materialized
  // (the scheduler owns sharing for multi-consumer values).
  ExprGraph g;
  ExprRef x = g.Input("X", {2, 2}, {4, 4});
  ExprRef y = g.Input("Y", {2, 2}, {4, 4});
  ExprRef p = g.Add(x, y);
  ExprRef out = g.Sub(g.Scale(p, 2.0), g.Map(p, kScalarRelu));
  LoweredExpr lo = MustLower(g, {out});
  // p materialized; Scale and Map fuse into the final Sub.
  EXPECT_EQ(lo.program.statements().size(), 2u);
  EXPECT_GE(lo.array_of[static_cast<size_t>(p)], 0);
  EXPECT_EQ(lo.fused_nodes, 2);
}

TEST(FusionTest, SameNodeTwiceInOneConsumerBreaksFusion) {
  // Add(p, p): two (consumer, arg-slot) uses, so p stays materialized —
  // fusing it would duplicate its whole subtree into the tape.
  ExprGraph g;
  ExprRef x = g.Input("X", {2, 2}, {4, 4});
  ExprRef p = g.Scale(x, 2.0);
  ExprRef out = g.Add(p, p);
  LoweredExpr lo = MustLower(g, {out});
  EXPECT_EQ(lo.program.statements().size(), 2u);
  EXPECT_GE(lo.array_of[static_cast<size_t>(p)], 0);
  EXPECT_EQ(lo.fused_nodes, 0);
}

TEST(FusionTest, KeepBreaksFusion) {
  ExprGraph g;
  ExprRef x = g.Input("X", {2, 2}, {4, 4});
  ExprRef p = g.Scale(x, 2.0);
  g.Keep(p);  // user demands the intermediate on disk
  ExprRef out = g.Scale(p, 3.0);
  LoweredExpr lo = MustLower(g, {out});
  EXPECT_EQ(lo.program.statements().size(), 2u);
  EXPECT_TRUE(
      lo.program.array(lo.array_of[static_cast<size_t>(p)]).persistent);
  EXPECT_EQ(lo.fused_nodes, 0);
}

TEST(FusionTest, BoundOutputBreaksFusion) {
  // p is itself an output: its array is the user contract, no fusing away.
  ExprGraph g;
  ExprRef x = g.Input("X", {2, 2}, {4, 4});
  ExprRef p = g.Scale(x, 2.0);
  ExprRef out = g.Scale(p, 3.0);
  LoweredExpr lo = MustLower(g, {p, out});
  EXPECT_EQ(lo.program.statements().size(), 2u);
  EXPECT_EQ(lo.fused_nodes, 0);
}

TEST(FusionTest, NonElementwiseNeighborsBreakFusion) {
  // Gemm consumer: Add feeding a Gemm stays a statement (different
  // iteration space). Gemm producer: Scale(Gemm) keeps the Gemm statement
  // and the Scale lowers as a plain singleton, not a tape.
  ExprGraph g;
  ExprRef a = g.Input("A", {2, 2}, {4, 4});
  ExprRef b = g.Input("B", {2, 2}, {4, 4});
  ExprRef sum = g.Add(a, b);
  ExprRef prod = g.Gemm(sum, b);
  ExprRef out = g.Scale(prod, 0.5);
  LoweredExpr lo = MustLower(g, {out});
  ASSERT_EQ(lo.program.statements().size(), 3u);
  EXPECT_EQ(lo.program.statement(0).op->kind, StatementOp::Kind::kAdd);
  EXPECT_EQ(lo.program.statement(1).op->kind, StatementOp::Kind::kGemm);
  EXPECT_EQ(lo.program.statement(2).op->kind, StatementOp::Kind::kScale);
  EXPECT_EQ(lo.fused_nodes, 0);
}

TEST(FusionTest, SingletonMapAndZipLowerAsTypedStatements) {
  ExprGraph g;
  ExprRef x = g.Input("X", {2, 2}, {4, 4});
  ExprRef y = g.Input("Y", {2, 2}, {4, 4});
  ExprRef m = g.Map(x, kScalarAbs);
  ExprRef out = g.Zip(m, y, kScalarMin);
  // Map has a single consumer (the Zip) so the pair fuses; with fusion off
  // they are typed kMap / kZip statements.
  LowerOptions off;
  off.fuse = false;
  LoweredExpr lo = MustLower(g, {out}, off);
  ASSERT_EQ(lo.program.statements().size(), 2u);
  EXPECT_EQ(lo.program.statement(0).op->kind, StatementOp::Kind::kMap);
  EXPECT_EQ(lo.program.statement(0).op->scalar_fn, kScalarAbs);
  EXPECT_EQ(lo.program.statement(1).op->kind, StatementOp::Kind::kZip);
  EXPECT_EQ(lo.program.statement(1).op->scalar_fn, kScalarMin);

  LoweredExpr fused = MustLower(g, {out});
  ASSERT_EQ(fused.program.statements().size(), 1u);
  EXPECT_EQ(fused.program.statement(0).op->kind, StatementOp::Kind::kFused);
}

TEST(FusionTest, TapeCapSplitsLongChains) {
  // A chain deeper than the cap allows must split into several compound
  // statements rather than one unbounded tape.
  ExprGraph g;
  ExprRef x = g.Input("X", {2, 2}, {4, 4});
  ExprRef t = x;
  for (int i = 0; i < 20; ++i) t = g.Scale(t, static_cast<double>(i + 2));
  LowerOptions opts;
  opts.max_fused_tape_ops = 6;  // 1 load + <= 5 scale ops per statement
  LoweredExpr lo = MustLower(g, {t}, opts);
  EXPECT_GT(lo.program.statements().size(), 1u);
  for (const Statement& st : lo.program.statements()) {
    ASSERT_TRUE(st.op.has_value());
    EXPECT_LE(st.op->tape.size(), 6u);
  }
  // Every node still computed: 20 scales spread over the statements.
  size_t total_scales = 0;
  for (const Statement& st : lo.program.statements()) {
    if (st.op->kind == StatementOp::Kind::kFused) {
      for (const TapeOp& op : st.op->tape) {
        total_scales += op.code == TapeOp::Code::kScale ? 1 : 0;
      }
    } else if (st.op->kind == StatementOp::Kind::kScale) {
      ++total_scales;
    }
  }
  EXPECT_EQ(total_scales, 20u);
}

TEST(FusionTest, PlanFusionReportsClusters) {
  ExprGraph g;
  ExprRef x = g.Input("X", {2, 2}, {4, 4});
  ExprRef y = g.Input("Y", {2, 2}, {4, 4});
  ExprRef a = g.Add(x, y);
  ExprRef b = g.Scale(a, 2.0);
  ExprRef c = g.Sub(b, x);
  FusionPlan plan = PlanFusion(g, {c});
  EXPECT_EQ(plan.fused_nodes, 2);
  EXPECT_TRUE(plan.Fused(a));
  EXPECT_TRUE(plan.Fused(b));
  EXPECT_FALSE(plan.Fused(c));
  EXPECT_EQ(plan.cluster_root[static_cast<size_t>(a)], c);
  EXPECT_EQ(plan.cluster_root[static_cast<size_t>(b)], c);
  EXPECT_EQ(plan.fused_into[static_cast<size_t>(a)], b);
  EXPECT_EQ(plan.fused_into[static_cast<size_t>(b)], c);

  FusionOptions off;
  off.enable = false;
  FusionPlan none = PlanFusion(g, {c}, off);
  EXPECT_EQ(none.fused_nodes, 0);
}

}  // namespace
}  // namespace riot
