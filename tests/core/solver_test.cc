// Tests of FindSchedule (Algorithm 3) against the paper's worked example
// and structural legality properties.
#include "core/schedule_solver.h"

#include <gtest/gtest.h>

#include "analysis/coaccess.h"
#include "ops/workload.h"

namespace riot {
namespace {

const CoAccess* Find(const std::vector<CoAccess>& list, const Program& p,
                     const std::string& label) {
  for (const auto& ca : list) {
    if (ca.Label(p) == label) return &ca;
  }
  return nullptr;
}

class SolverFixture : public ::testing::Test {
 protected:
  void Init(int64_t n1, int64_t n2, int64_t n3) {
    w_ = MakeExample1(n1, n2, n3);
    analysis_ = AnalyzeProgram(w_.program);
    solver_ = std::make_unique<ScheduleSolver>(w_.program,
                                               analysis_.dependences);
  }

  std::vector<const CoAccess*> Opps(std::vector<std::string> labels) {
    std::vector<const CoAccess*> q;
    for (const auto& l : labels) {
      const CoAccess* o = Find(analysis_.sharing, w_.program, l);
      EXPECT_NE(o, nullptr) << l;
      q.push_back(o);
    }
    return q;
  }

  Workload w_;
  AnalysisResult analysis_;
  std::unique_ptr<ScheduleSolver> solver_;
};

TEST_F(SolverFixture, EmptySetYieldsLegalSchedule) {
  Init(3, 4, 2);
  auto s = solver_->FindSchedule({});
  ASSERT_TRUE(s.has_value());
  EXPECT_TRUE(solver_->IsLegal(*s));
}

TEST_F(SolverFixture, OriginalScheduleIsLegal) {
  Init(3, 4, 2);
  EXPECT_TRUE(solver_->IsLegal(w_.program.original_schedule()));
}

TEST_F(SolverFixture, ReversedScheduleIsIllegal) {
  Init(3, 4, 2);
  // Swap the nest constants so s2 runs before s1: violates s1WC -> s2RC.
  Schedule bad = w_.program.original_schedule();
  bad.MutableForStatement(0).At(0, 2) = Rational(1);
  bad.MutableForStatement(1).At(0, 3) = Rational(0);
  EXPECT_FALSE(solver_->IsLegal(bad));
}

TEST_F(SolverFixture, PaperSection55Combination) {
  // Paper Section 5.5: realizing {s1WC->s2RC, s2WE->s2RE, s2WE->s2WE}
  // produces the transformed code of Figure 1(b). Verify the found schedule
  // realizes all three and is legal.
  Init(3, 4, 2);
  auto q = Opps({"s1WC->s2RC", "s2WE->s2RE", "s2WE->s2WE"});
  auto s = solver_->FindSchedule(q);
  ASSERT_TRUE(s.has_value());
  EXPECT_TRUE(solver_->IsLegal(*s));
  for (const CoAccess* o : q) EXPECT_TRUE(solver_->Realizes(*s, *o));
  // Figure 1(b) structure: s1 and s2 share the k-loop at j == 0, i.e. for
  // pairs (i,k) / (i,0,k) the time prefixes coincide and only the constant
  // dimension differs.
  const CoAccess* c = q[0];
  for (const auto& pr : c->pairs) {
    TimeVector ts = s->TimeOf(0, pr.src_iter);
    TimeVector td = s->TimeOf(1, pr.dst_iter);
    for (size_t r = 0; r + 1 < ts.size(); ++r) EXPECT_EQ(ts[r], td[r]);
    EXPECT_LT(ts.back(), td.back());
  }
}

TEST_F(SolverFixture, ConflictingOpportunitiesRejected) {
  // Paper Section 1: pinning E in memory across the k loop (s2WE->s2WE at
  // the innermost dimension) conflicts with keeping D for reuse across i
  // (s2RD->s2RD needs i innermost). They cannot be realized together.
  Init(3, 4, 2);
  auto q = Opps({"s2WE->s2WE", "s2RD->s2RD"});
  EXPECT_FALSE(solver_->FindSchedule(q).has_value());
}

TEST_F(SolverFixture, RealizesRejectsOriginalScheduleForReordering) {
  // The original schedule does not realize s2RD->s2RD (reuse of D[k,j]
  // across i requires i innermost).
  Init(3, 4, 2);
  auto q = Opps({"s2RD->s2RD"});
  EXPECT_FALSE(solver_->Realizes(w_.program.original_schedule(), *q[0]));
  auto s = solver_->FindSchedule(q);
  ASSERT_TRUE(s.has_value());
  EXPECT_TRUE(solver_->Realizes(*s, *q[0]));
}

TEST_F(SolverFixture, EveryFoundScheduleIsInjective) {
  Init(2, 3, 2);
  for (const auto& opp : analysis_.sharing) {
    auto s = solver_->FindSchedule({&opp});
    if (!s.has_value()) continue;
    auto order = w_.program.ScheduledOrder(*s);
    for (size_t i = 1; i < order.size(); ++i) {
      EXPECT_NE(CompareTime(order[i - 1].time, order[i].time), 0)
          << "duplicate time under " << opp.Label(w_.program);
    }
  }
}

TEST_F(SolverFixture, DependencesHoldUnderEverySingletonSchedule) {
  Init(2, 3, 2);
  for (const auto& opp : analysis_.sharing) {
    auto s = solver_->FindSchedule({&opp});
    if (!s.has_value()) continue;
    for (const auto& dep : analysis_.dependences) {
      for (const auto& pr : dep.pairs) {
        TimeVector ts = s->TimeOf(dep.src.stmt_id, pr.src_iter);
        TimeVector td = s->TimeOf(dep.dst.stmt_id, pr.dst_iter);
        EXPECT_LT(CompareTime(ts, td), 0)
            << dep.Label(w_.program) << " violated under "
            << opp.Label(w_.program);
      }
    }
  }
}

TEST(SolverDepthOne, LinRegPipelineSchedulable) {
  // All-depth-1 program: schedules have two rows; cross-statement
  // dependences are resolved by large constants or the final constant
  // dimension.
  Workload w = MakeLinReg(40);
  AnalysisResult a = AnalyzeProgram(w.program);
  ScheduleSolver solver(w.program, a.dependences);
  // Fusing the two X-consumers (paper's best plan shares reads of X).
  const CoAccess* x12 = Find(a.sharing, w.program, "s1RX->s2RX");
  ASSERT_NE(x12, nullptr);
  auto s = solver.FindSchedule({x12});
  ASSERT_TRUE(s.has_value());
  EXPECT_TRUE(solver.IsLegal(*s));
  EXPECT_TRUE(solver.Realizes(*s, *x12));
}

}  // namespace
}  // namespace riot
