// Pseudo-code printer tests: emitted structure must reflect the paper's
// transformed programs (Figure 1(b) / Section 5.5).
#include "core/pseudocode.h"

#include <gtest/gtest.h>

#include "core/schedule_solver.h"
#include "ops/workload.h"

namespace riot {
namespace {

const CoAccess* Find(const std::vector<CoAccess>& list, const Program& p,
                     const std::string& label) {
  for (const auto& ca : list) {
    if (ca.Label(p) == label) return &ca;
  }
  return nullptr;
}

TEST(PseudoCodeTest, OriginalScheduleShowsTwoSequentialNests) {
  Workload w = MakeExample1(2, 3, 2);
  std::string code =
      EmitPseudoCode(w.program, w.program.original_schedule());
  // Two top-level segments (t1 = 0 and t1 = 1), s1 only under the first.
  EXPECT_NE(code.find("t1 = 0"), std::string::npos);
  EXPECT_NE(code.find("t1 = 1"), std::string::npos);
  EXPECT_NE(code.find("s1("), std::string::npos);
  EXPECT_NE(code.find("s2("), std::string::npos);
  // s1 must appear before s2 in the text.
  EXPECT_LT(code.find("s1("), code.find("s2("));
}

TEST(PseudoCodeTest, Figure1bStructure) {
  // The Section 5.5 plan: j == 0 body contains s1 and s2 (pipelined); the
  // remaining j iterations contain only s2.
  Workload w = MakeExample1(3, 4, 3);
  AnalysisResult a = AnalyzeProgram(w.program);
  ScheduleSolver solver(w.program, a.dependences);
  std::vector<const CoAccess*> q = {
      Find(a.sharing, w.program, "s1WC->s2RC"),
      Find(a.sharing, w.program, "s2WE->s2RE"),
      Find(a.sharing, w.program, "s2WE->s2WE")};
  auto s = solver.FindSchedule(q);
  ASSERT_TRUE(s.has_value());
  std::string code = EmitPseudoCode(w.program, *s);
  // One t1 segment with s1 (the fused j == 0 slice), one loop without s1.
  size_t first_s1 = code.find("s1(");
  ASSERT_NE(first_s1, std::string::npos);
  // After the fused slice, a collapsed loop over the remaining n3 - 1 = 2
  // iterations containing only s2.
  size_t loop = code.find("2 iterations");
  ASSERT_NE(loop, std::string::npos);
  EXPECT_EQ(code.find("s1(", loop), std::string::npos);
}

TEST(PseudoCodeTest, CollapsedLoopsReportIterationCounts) {
  Workload w = MakeExample1(4, 5, 1);
  std::string code =
      EmitPseudoCode(w.program, w.program.original_schedule());
  // s1's outer loop over i collapses to 4 iterations.
  EXPECT_NE(code.find("4 iterations"), std::string::npos);
}

TEST(PseudoCodeTest, HandlesNegatedScheduleRows) {
  // A schedule with -i rows enumerates i downwards; time values still print
  // as an increasing loop over the negated range (the stream is sorted by
  // time), with the statement's iteration values reversed at the leaves.
  Workload w = MakeExample1(3, 2, 1);
  Schedule sched = w.program.original_schedule();
  for (int s = 0; s < 2; ++s) {
    RMatrix& m = sched.MutableForStatement(s);
    for (size_t c = 0; c < m.cols(); ++c) {
      m.At(1, c) = m.At(1, c) * Rational(-1);
    }
  }
  std::string code = EmitPseudoCode(w.program, sched);
  EXPECT_NE(code.find("t2 = -2"), std::string::npos);
  // The representative body of the collapsed t2 loop shows i at its highest
  // value (time -i = -2 -> i = 2).
  EXPECT_NE(code.find("i=2"), std::string::npos);
}

}  // namespace
}  // namespace riot
