// Replacement-policy x memory-cap sweep (paper Section 2: buffer-pool
// sharing is "low-level, opportunistic, and extremely sensitive to ... the
// replacement policy"). Runs the 2mm workload under the
// opportunistic-cache ablation at shrinking caps with LRU, Clock, and
// ScheduleOpt (Belady/MIN from the plan's access script), quantifying how
// much of the LRU read traffic the schedule's foreknowledge eliminates —
// and cross-checks each measured point against the cost model's cache
// simulator. `--json <path>` emits the sweep machine-readably (reads,
// evictions, spills, wall) for the perf trajectory.
#include <cstdio>
#include <string>

#include "bench_common.h"
#include "core/cost_model.h"
#include "util/logging.h"

namespace riot {
namespace bench {
namespace {

void Run(BenchJson* json) {
  Workload w = MakeTwoMatMul(TwoMatMulConfig::kConfigA, ExecScale(100));
  w.program.Validate().CheckOK();
  auto env = NewMemEnv();

  int64_t total_bytes = 0;
  for (size_t a = 0; a < w.program.arrays().size(); ++a) {
    const ArrayInfo& arr = w.program.array(static_cast<int>(a));
    total_bytes += arr.BlockBytes() * arr.NumBlocks();
  }
  const PlanCost unshared =
      EvaluatePlanCost(w.program, w.program.original_schedule(), {});

  std::printf(
      "\n=== replacement policy x cap sweep (2mm Config A, opportunistic "
      "cache, MemEnv, 1/%lld scale; total array bytes %.1f MB) ===\n",
      static_cast<long long>(ExecScale(100)), total_bytes / 1e6);
  std::printf("%10s %8s %12s %10s %10s %8s %12s %9s\n", "cap(%)", "policy",
              "block_reads", "evictions", "spills", "hits", "saved_reads",
              "wall(s)");

  int run_idx = 0;
  for (const double frac : {1.0, 0.5, 0.25, 0.125}) {
    const int64_t cap = static_cast<int64_t>(total_bytes * frac);
    if (cap < unshared.peak_memory_bytes) {
      std::printf("%9.0f%% %8s (cap below the largest instance footprint; "
                  "skipped)\n", frac * 100, "-");
      continue;
    }
    int64_t lru_reads = 0;
    for (const ReplacementKind kind :
         {ReplacementKind::kLru, ReplacementKind::kClock,
          ReplacementKind::kScheduleOpt}) {
      auto rt = OpenStores(env.get(), w.program,
                           "/swp" + std::to_string(run_idx++));
      rt.status().CheckOK();
      InitInputs(w, *rt, /*seed=*/1234).CheckOK();
      ExecOptions eo;
      eo.mode = ExecMode::kOpportunisticCache;
      eo.memory_cap_bytes = cap;
      eo.replacement = kind;
      Executor ex(w.program, rt->raw(), w.kernels, eo);
      auto stats = ex.Run(w.program.original_schedule(), {});
      stats.status().CheckOK();

      // The measured point must match the cache simulator exactly — the
      // same guarantee the differential tests enforce, kept visible here.
      CacheSimOptions sim;
      sim.policy = kind;
      sim.cap_bytes = cap;
      sim.opportunistic = true;
      auto predicted = SimulateCacheBehavior(
          w.program, w.program.original_schedule(), {}, sim);
      predicted.status().CheckOK();
      RIOT_CHECK_EQ(predicted->block_reads, stats->block_reads);
      RIOT_CHECK_EQ(predicted->evictions, stats->pool.evictions);

      if (kind == ReplacementKind::kLru) lru_reads = stats->block_reads;
      std::printf("%9.0f%% %8s %12lld %10lld %10lld %8lld %12lld %9.3f",
                  frac * 100, ReplacementKindName(kind).c_str(),
                  static_cast<long long>(stats->block_reads),
                  static_cast<long long>(stats->pool.evictions),
                  static_cast<long long>(stats->pool.dirty_writebacks),
                  static_cast<long long>(stats->pool.hits),
                  static_cast<long long>(stats->policy_saved_reads),
                  stats->wall_seconds);
      if (kind == ReplacementKind::kScheduleOpt && lru_reads > 0) {
        std::printf("   (%.1f%% of LRU reads)\n",
                    100.0 * static_cast<double>(stats->block_reads) /
                        static_cast<double>(lru_reads));
      } else {
        std::printf("\n");
      }
      if (json != nullptr) {
        json->Add("original", "replacement", /*threads=*/1,
                  /*pipeline_depth=*/0, *stats, ReplacementKindName(kind),
                  cap);
      }
    }
  }
  std::printf(
      "(ScheduleOpt = Belady/MIN over the plan's exact future block-access "
      "order; the gap to LRU is read traffic the schedule's foreknowledge "
      "eliminates. Every row is cross-checked against the cost model's "
      "cache simulator.)\n");
}

}  // namespace
}  // namespace bench
}  // namespace riot

int main(int argc, char** argv) {
  riot::bench::BenchJson json("replacement", argc, argv);
  riot::bench::Run(&json);
  json.Flush();
  return 0;
}
