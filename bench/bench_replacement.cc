// Replacement-policy x memory-cap sweep (paper Section 2: buffer-pool
// sharing is "low-level, opportunistic, and extremely sensitive to ... the
// replacement policy"). Runs the 2mm workload under the
// opportunistic-cache ablation at shrinking caps with LRU, Clock, and
// ScheduleOpt (Belady/MIN from the plan's access script), quantifying how
// much of the LRU read traffic the schedule's foreknowledge eliminates —
// and cross-checks each measured point against the cost model's cache
// simulator.
//
// A second, multi-tenant sweep runs three concurrent 2mm sessions over ONE
// shared sub-working-set pool, kernels serialized into a fixed global
// order by a LockstepGate so the numbers are deterministic: with several
// plans bound at once ScheduleOpt's merged future-use clock must still
// beat LRU (checked strictly at the tightest cap), outputs must stay
// bit-identical to solo runs, and every point is cross-checked against
// SimulateMultiTenantCache exactly. `--json <path>` emits both sweeps
// machine-readably (reads, evictions, spills, wall) for the perf
// trajectory.
#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/cost_model.h"
#include "core/plan_realization.h"
#include "exec/verify.h"
#include "ops/lockstep.h"
#include "storage/buffer_pool.h"
#include "util/logging.h"

namespace riot {
namespace bench {
namespace {

void Run(BenchJson* json) {
  Workload w = MakeTwoMatMul(TwoMatMulConfig::kConfigA, ExecScale(100));
  w.program.Validate().CheckOK();
  auto env = NewMemEnv();

  int64_t total_bytes = 0;
  for (size_t a = 0; a < w.program.arrays().size(); ++a) {
    const ArrayInfo& arr = w.program.array(static_cast<int>(a));
    total_bytes += arr.BlockBytes() * arr.NumBlocks();
  }
  const PlanCost unshared =
      EvaluatePlanCost(w.program, w.program.original_schedule(), {});

  std::printf(
      "\n=== replacement policy x cap sweep (2mm Config A, opportunistic "
      "cache, MemEnv, 1/%lld scale; total array bytes %.1f MB) ===\n",
      static_cast<long long>(ExecScale(100)), total_bytes / 1e6);
  std::printf("%10s %8s %12s %10s %10s %8s %12s %9s\n", "cap(%)", "policy",
              "block_reads", "evictions", "spills", "hits", "saved_reads",
              "wall(s)");

  int run_idx = 0;
  for (const double frac : {1.0, 0.5, 0.25, 0.125}) {
    const int64_t cap = static_cast<int64_t>(total_bytes * frac);
    if (cap < unshared.peak_memory_bytes) {
      std::printf("%9.0f%% %8s (cap below the largest instance footprint; "
                  "skipped)\n", frac * 100, "-");
      continue;
    }
    int64_t lru_reads = 0;
    for (const ReplacementKind kind :
         {ReplacementKind::kLru, ReplacementKind::kClock,
          ReplacementKind::kScheduleOpt}) {
      auto rt = OpenStores(env.get(), w.program,
                           "/swp" + std::to_string(run_idx++));
      rt.status().CheckOK();
      InitInputs(w, *rt, /*seed=*/1234).CheckOK();
      ExecOptions eo;
      eo.mode = ExecMode::kOpportunisticCache;
      eo.memory_cap_bytes = cap;
      eo.replacement = kind;
      Executor ex(w.program, rt->raw(), w.kernels, eo);
      auto stats = ex.Run(w.program.original_schedule(), {});
      stats.status().CheckOK();

      // The measured point must match the cache simulator exactly — the
      // same guarantee the differential tests enforce, kept visible here.
      CacheSimOptions sim;
      sim.policy = kind;
      sim.cap_bytes = cap;
      sim.opportunistic = true;
      auto predicted = SimulateCacheBehavior(
          w.program, w.program.original_schedule(), {}, sim);
      predicted.status().CheckOK();
      RIOT_CHECK_EQ(predicted->block_reads, stats->block_reads);
      RIOT_CHECK_EQ(predicted->evictions, stats->pool.evictions);

      if (kind == ReplacementKind::kLru) lru_reads = stats->block_reads;
      std::printf("%9.0f%% %8s %12lld %10lld %10lld %8lld %12lld %9.3f",
                  frac * 100, ReplacementKindName(kind).c_str(),
                  static_cast<long long>(stats->block_reads),
                  static_cast<long long>(stats->pool.evictions),
                  static_cast<long long>(stats->pool.dirty_writebacks),
                  static_cast<long long>(stats->pool.hits),
                  static_cast<long long>(stats->policy_saved_reads),
                  stats->wall_seconds);
      if (kind == ReplacementKind::kScheduleOpt && lru_reads > 0) {
        std::printf("   (%.1f%% of LRU reads)\n",
                    100.0 * static_cast<double>(stats->block_reads) /
                        static_cast<double>(lru_reads));
      } else {
        std::printf("\n");
      }
      if (json != nullptr) {
        json->Add("original", "replacement", /*threads=*/1,
                  /*pipeline_depth=*/0, *stats, ReplacementKindName(kind),
                  cap);
      }
    }
  }
  std::printf(
      "(ScheduleOpt = Belady/MIN over the plan's exact future block-access "
      "order; the gap to LRU is read traffic the schedule's foreknowledge "
      "eliminates. Every row is cross-checked against the cost model's "
      "cache simulator.)\n");
}

// Three concurrent 2mm sessions over one shared pool, kernels serialized
// into a fixed seeded interleaving so every (cap, policy) point is exactly
// reproducible and exactly predictable by SimulateMultiTenantCache.
void RunMultiTenant(BenchJson* json) {
  const int kTenants = 3;
  auto env = NewMemEnv();

  struct Tenant {
    Workload w;
    int64_t footprint = 0;
    size_t instances = 0;
    std::vector<int> pool_ids;
  };
  std::vector<Tenant> tenants(kTenants);
  int next_pool_id = 0;
  int64_t total_bytes = 0;
  int64_t sum_footprint = 0;
  for (int t = 0; t < kTenants; ++t) {
    Tenant& ten = tenants[static_cast<size_t>(t)];
    ten.w = MakeTwoMatMul(TwoMatMulConfig::kConfigA, ExecScale(100));
    ten.w.program.Validate().CheckOK();
    const PlanCost cost = EvaluatePlanCost(
        ten.w.program, ten.w.program.original_schedule(), {});
    ten.footprint = cost.peak_memory_bytes;
    sum_footprint += ten.footprint;
    ten.instances = RealizePlan(ten.w.program,
                                ten.w.program.original_schedule(), {})
                        .order.size();
    for (size_t a = 0; a < ten.w.program.arrays().size(); ++a) {
      const ArrayInfo& arr = ten.w.program.array(static_cast<int>(a));
      total_bytes += arr.BlockBytes() * arr.NumBlocks();
      ten.pool_ids.push_back(next_pool_id++);
    }
  }

  // One seeded interleaving shared by every (cap, policy) point: reads
  // are only comparable on a fixed global kernel order.
  std::vector<int> interleaving;
  for (int t = 0; t < kTenants; ++t) {
    interleaving.insert(interleaving.end(),
                        tenants[static_cast<size_t>(t)].instances, t);
  }
  std::mt19937_64 rng(4242);
  std::shuffle(interleaving.begin(), interleaving.end(), rng);

  // Solo references: the bit-identity baseline for every tenant.
  std::vector<std::unique_ptr<Runtime>> ref_rts;
  for (int t = 0; t < kTenants; ++t) {
    Tenant& ten = tenants[static_cast<size_t>(t)];
    auto rt = OpenStores(env.get(), ten.w.program,
                         "/mt_ref" + std::to_string(t));
    rt.status().CheckOK();
    InitInputs(ten.w, *rt, /*seed=*/1234 + t).CheckOK();
    Executor ex(ten.w.program, rt->raw(), ten.w.kernels);
    ex.Run(ten.w.program.original_schedule(), {}).status().CheckOK();
    ref_rts.push_back(std::make_unique<Runtime>(std::move(rt).ValueOrDie()));
  }

  std::printf(
      "\n=== multi-tenant replacement sweep (%d lockstep 2mm sessions, one "
      "shared pool; sum of footprints %.1f MB, total array bytes %.1f MB) "
      "===\n",
      kTenants, sum_footprint / 1e6, total_bytes / 1e6);
  std::printf("%12s %8s %12s %10s %10s %12s\n", "cap(MB)", "policy",
              "block_reads", "evictions", "hits", "saved_reads");

  // Tightest cap: well below the tenants' combined working set (so
  // evictions decide the read counts) but far above the sum of pinned
  // footprints (so no policy degenerates into evict-everything, where all
  // of them read alike).
  const int64_t tight_cap = std::max(sum_footprint, total_bytes / 8);
  int run_idx = 0;
  for (const int64_t cap : {tight_cap, total_bytes / 2, total_bytes}) {
    std::map<ReplacementKind, int64_t> total_reads;
    for (const ReplacementKind kind :
         {ReplacementKind::kLru, ReplacementKind::kClock,
          ReplacementKind::kScheduleOpt}) {
      BufferPool pool(cap, MakeReplacementPolicy(kind));
      LockstepGate gate(kTenants, interleaving);

      std::vector<std::unique_ptr<Runtime>> rts;
      std::vector<std::unique_ptr<PoolAccount>> accounts;
      std::vector<std::vector<StatementKernel>> gated_kernels;
      for (int t = 0; t < kTenants; ++t) {
        Tenant& ten = tenants[static_cast<size_t>(t)];
        auto rt = OpenStores(env.get(), ten.w.program,
                             "/mt" + std::to_string(run_idx) + "_" +
                                 std::to_string(t));
        rt.status().CheckOK();
        InitInputs(ten.w, *rt, /*seed=*/1234 + t).CheckOK();
        rts.push_back(
            std::make_unique<Runtime>(std::move(rt).ValueOrDie()));
        auto account = std::make_unique<PoolAccount>();
        account->budget_bytes = ten.footprint;
        accounts.push_back(std::move(account));
        std::vector<StatementKernel> wrapped;
        for (const StatementKernel& k : ten.w.kernels) {
          wrapped.push_back([&gate, t, k](const std::vector<int64_t>& iter,
                                          const std::vector<DenseView*>& v) {
            gate.EnterKernel(t);
            k(iter, v);
          });
        }
        gated_kernels.push_back(std::move(wrapped));
      }
      ++run_idx;

      std::vector<Result<ExecStats>> stats(
          kTenants, Result<ExecStats>(Status::Internal("not run")));
      std::vector<std::thread> threads;
      for (int t = 0; t < kTenants; ++t) {
        Tenant& ten = tenants[static_cast<size_t>(t)];
        threads.emplace_back([&, t]() {
          SessionBinding binding;
          binding.account = accounts[static_cast<size_t>(t)].get();
          binding.pool_array_ids = ten.pool_ids;
          ExecOptions eo;
          eo.shared_pool = &pool;
          eo.replacement = kind;
          eo.session = &binding;
          Executor ex(ten.w.program, rts[static_cast<size_t>(t)]->raw(),
                      gated_kernels[static_cast<size_t>(t)], eo);
          stats[static_cast<size_t>(t)] =
              ex.Run(ten.w.program.original_schedule(), {});
          gate.Finish(t);
        });
        gate.AwaitArrival(t);
      }
      gate.Start();
      for (std::thread& th : threads) th.join();

      // Exact simulator cross-check + bit-identity, same guarantees the
      // differential oracle enforces, kept visible in the bench.
      std::vector<TenantCacheScript> scripts;
      for (int t = 0; t < kTenants; ++t) {
        Tenant& ten = tenants[static_cast<size_t>(t)];
        TenantCacheScript ts;
        ts.program = &ten.w.program;
        ts.schedule = &ten.w.program.original_schedule();
        ts.pool_array_ids = ten.pool_ids;
        ts.budget_bytes = ten.footprint;
        scripts.push_back(std::move(ts));
      }
      CacheSimOptions sim;
      sim.policy = kind;
      sim.cap_bytes = cap;
      auto predicted = SimulateMultiTenantCache(scripts, interleaving, sim);
      predicted.status().CheckOK();

      ExecStats agg;
      for (int t = 0; t < kTenants; ++t) {
        stats[static_cast<size_t>(t)].status().CheckOK();
        const ExecStats& st = *stats[static_cast<size_t>(t)];
        const CacheSimResult& per =
            predicted->per_tenant[static_cast<size_t>(t)];
        RIOT_CHECK_EQ(per.block_reads, st.block_reads);
        RIOT_CHECK_EQ(per.policy_saved_reads, st.policy_saved_reads);
        agg.block_reads += st.block_reads;
        agg.block_writes += st.block_writes;
        agg.bytes_read += st.bytes_read;
        agg.bytes_written += st.bytes_written;
        agg.policy_saved_reads += st.policy_saved_reads;
        agg.io_seconds += st.io_seconds;
        agg.compute_seconds += st.compute_seconds;
        agg.wall_seconds += st.wall_seconds;
        for (int arr : tenants[static_cast<size_t>(t)].w.output_arrays) {
          auto diff = MaxAbsDifference(
              tenants[static_cast<size_t>(t)].w.program.array(arr),
              ref_rts[static_cast<size_t>(t)]
                  ->stores[static_cast<size_t>(arr)]
                  .get(),
              rts[static_cast<size_t>(t)]
                  ->stores[static_cast<size_t>(arr)]
                  .get());
          diff.status().CheckOK();
          RIOT_CHECK_EQ(*diff, 0.0);
        }
      }
      const BufferPoolStats ps = pool.stats();
      RIOT_CHECK_EQ(predicted->total.evictions, ps.evictions);
      RIOT_CHECK_EQ(predicted->total.hits, ps.hits);
      agg.pool = ps;
      total_reads[kind] = agg.block_reads;

      std::printf("%12.1f %8s %12lld %10lld %10lld %12lld\n", cap / 1e6,
                  ReplacementKindName(kind).c_str(),
                  static_cast<long long>(agg.block_reads),
                  static_cast<long long>(ps.evictions),
                  static_cast<long long>(ps.hits),
                  static_cast<long long>(agg.policy_saved_reads));
      if (json != nullptr) {
        json->Add("multitenant", "replacement", /*threads=*/kTenants,
                  /*pipeline_depth=*/0, agg, ReplacementKindName(kind),
                  cap);
      }
    }
    // The merged-clock payoff, asserted where it matters: at the tightest
    // (sub-working-set) cap the schedules' foreknowledge must beat LRU
    // strictly even with every plan bound at once.
    if (cap == tight_cap) {
      RIOT_CHECK_LT(total_reads[ReplacementKind::kScheduleOpt],
                    total_reads[ReplacementKind::kLru]);
    } else {
      RIOT_CHECK_LE(total_reads[ReplacementKind::kScheduleOpt],
                    total_reads[ReplacementKind::kLru]);
    }
  }
  std::printf(
      "(one fixed kernel interleaving per table: every policy faces the "
      "identical global access order, so the read gap is the policy alone. "
      "Each row is cross-checked against SimulateMultiTenantCache and "
      "bit-compared against solo runs.)\n");
}

}  // namespace
}  // namespace bench
}  // namespace riot

int main(int argc, char** argv) {
  riot::bench::BenchJson json("replacement", argc, argv);
  riot::bench::Run(&json);
  riot::bench::RunMultiTenant(&json);
  json.Flush();
  return 0;
}
