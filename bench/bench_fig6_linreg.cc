// E6 (DESIGN.md): linear regression, the paper's complete 7-step program
// (Section 6.3, Table 4, Figure 6). Paper headline: the best plan uses only
// 6.0% more memory than the unoptimized plan but saves 43.8% of I/O time
// (27.0% total runtime), by sharing the reads of X between the two
// out-of-core multiplications and eliminating intermediate materialization.
//
// Paper selected plans: Plan 0 (original), Plan 1 (keep U and V in memory
// during the accumulations), Plan 2 (best: Plan 1 + share X reads +
// eliminate Yhat/E materialization).
#include <algorithm>
#include <cstdio>
#include <set>

#include "bench_common.h"

namespace riot {
namespace bench {
namespace {

// Finds the cheapest plan realizing at least `required` whose memory stays
// under `cap` (used to locate the paper's selected plans in our larger plan
// space).
int CheapestWith(const OptimizationResult& r, const Program& p,
                 const std::vector<std::string>& required, double cap_mb) {
  int best = -1;
  for (size_t i = 0; i < r.plans.size(); ++i) {
    const Plan& plan = r.plans[i];
    std::set<std::string> have;
    for (int oi : plan.opportunities) {
      have.insert(r.analysis.sharing[static_cast<size_t>(oi)].Label(p));
    }
    bool ok = true;
    for (const auto& l : required) {
      if (!have.count(l)) ok = false;
    }
    if (!ok) continue;
    if (plan.cost.peak_memory_bytes / 1e6 > cap_mb) continue;
    if (best < 0 ||
        plan.cost.io_seconds < r.plans[size_t(best)].cost.io_seconds) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

void Run(int argc, char** argv) {
  std::printf("=== Figure 6 / Table 4: linear regression (7 steps) ===\n");
  BenchJson json("fig6_linreg", argc, argv);
  Harness h("fig6", MakeLinReg);
  OptimizerOptions opts;
  // The paper's machine has 8 GB; plans beyond that are not selectable.
  opts.memory_cap_bytes = int64_t{8000} * 1000 * 1000;
  const auto& r = h.Optimize(opts);
  const Program& p = h.paper_workload().program;
  std::printf("paper: 16 sharing opportunities, optimization 156.7 s "
              "(Python), 94%% of the search space pruned\n");
  std::printf("ours:  %zu opportunities, optimization %.1f s (C++)\n\n",
              r.analysis.sharing.size(), r.optimize_seconds);

  // Paper's selected plans. Plan 1 is the exact "keep U and V in memory
  // during the multiplication" set.
  int plan0 = 0;
  int plan1 = -1;
  {
    std::set<std::string> want = {"s1WU->s1RU", "s1WU->s1WU", "s2WV->s2RV",
                                  "s2WV->s2WV"};
    for (size_t i = 0; i < r.plans.size(); ++i) {
      if (r.plans[i].opportunities.size() != want.size()) continue;
      std::set<std::string> have;
      for (int oi : r.plans[i].opportunities) {
        have.insert(r.analysis.sharing[static_cast<size_t>(oi)].Label(p));
      }
      if (have == want) {
        plan1 = static_cast<int>(i);
        break;
      }
    }
  }
  // Paper's best: +6% memory over plan 0. Our search also finds cheaper
  // higher-memory plans; restrict to the paper's memory envelope to locate
  // the corresponding plan, then also report our unrestricted best.
  double mem0 = r.plans[0].cost.peak_memory_bytes / 1e6;
  int plan2 = CheapestWith(r, p,
                           {"s1RX->s2RX", "s5WYh->s6RYh", "s6WEr->s7REr"},
                           mem0 * 1.10);
  std::vector<PlanRun> runs;
  runs.push_back(h.RunPlan(plan0, "Plan 0 (original)"));
  if (plan1 >= 0) runs.push_back(h.RunPlan(plan1, "Plan 1 (pin U,V)"));
  if (plan2 >= 0) runs.push_back(h.RunPlan(plan2, "Plan 2 (share X, elim)"));
  int best = r.best_index;
  if (best != plan2 && best != plan1 && best != 0) {
    runs.push_back(h.RunPlan(best, "our best (8GB cap)"));
  }
  for (const PlanRun& run : runs) {
    json.Add(run.label, "plan", /*threads=*/1, /*pipeline_depth=*/0,
             run.measured);
  }
  Harness::PrintRuns(runs);

  if (plan2 >= 0) {
    const PlanCost& c0 = r.plans[0].cost;
    const PlanCost& c2 = r.plans[size_t(plan2)].cost;
    std::printf("\npaper: best plan = +6.0%% memory, -43.8%% I/O time\n");
    std::printf("ours (paper-envelope plan): %+.1f%% memory, %+.1f%% I/O\n",
                100.0 * (double(c2.peak_memory_bytes) /
                             double(c0.peak_memory_bytes) - 1.0),
                100.0 * (c2.io_seconds / c0.io_seconds - 1.0));
    const PlanCost& cb = r.plans[size_t(best)].cost;
    std::printf("ours (unrestricted best under 8 GB): %+.1f%% memory, "
                "%+.1f%% I/O {%s}\n",
                100.0 * (double(cb.peak_memory_bytes) /
                             double(c0.peak_memory_bytes) - 1.0),
                100.0 * (cb.io_seconds / c0.io_seconds - 1.0),
                r.plans[size_t(best)]
                    .DescribeOpportunities(p, r.analysis.sharing)
                    .c_str());
  }

  RunThreadSweep("fig6_linreg", MakeLinReg, &json);
  json.Flush();
}

}  // namespace
}  // namespace bench
}  // namespace riot

int main(int argc, char** argv) {
  riot::bench::Run(argc, argv);
  return 0;
}
