#include "bench_common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>

#include "exec/verify.h"
#include "util/logging.h"

namespace riot {
namespace bench {

int64_t ExecScale(int64_t def) {
  const char* env = std::getenv("RIOT_SCALE");
  if (env != nullptr) {
    int64_t v = std::atoll(env);
    if (v > 0) return v;
  }
  return def;
}

Harness::Harness(std::string name, std::function<Workload(int64_t)> factory)
    : name_(std::move(name)), factory_(std::move(factory)),
      paper_(factory_(1)), scaled_(factory_(ExecScale())),
      env_(NewPosixEnv()) {
  dir_ = "bench_data_" + name_;
  std::filesystem::create_directories(dir_);
  paper_.program.Validate().CheckOK();
  scaled_.program.Validate().CheckOK();
}

Harness::~Harness() {
  std::error_code ec;
  std::filesystem::remove_all(dir_, ec);
}

const OptimizationResult& Harness::Optimize(const OptimizerOptions& opts) {
  if (!optimized_) {
    result_ = riot::Optimize(paper_.program, opts);
    optimized_ = true;
    std::printf(
        "[%s] optimizer: %zu sharing opportunities, %zu plans, "
        "%lld candidates tested, %lld pruned, %.2f s\n",
        name_.c_str(), result_.analysis.sharing.size(), result_.plans.size(),
        static_cast<long long>(result_.candidates_tested),
        static_cast<long long>(result_.candidates_pruned),
        result_.optimize_seconds);
  }
  return result_;
}

PlanRun Harness::RunPlan(int plan_index, const std::string& label) {
  RIOT_CHECK(optimized_);
  const Plan& plan = result_.plans[static_cast<size_t>(plan_index)];

  // Map the paper-scale plan onto the scaled program: block grids (and thus
  // statements, domains, accesses, schedules, opportunity order) are
  // identical across scales; only block byte sizes differ.
  AnalysisResult scaled_analysis = AnalyzeProgram(scaled_.program);
  RIOT_CHECK_EQ(scaled_analysis.sharing.size(),
                result_.analysis.sharing.size());
  std::vector<const CoAccess*> q;
  for (int oi : plan.opportunities) {
    const CoAccess& paper_opp =
        result_.analysis.sharing[static_cast<size_t>(oi)];
    const CoAccess& scaled_opp =
        scaled_analysis.sharing[static_cast<size_t>(oi)];
    RIOT_CHECK_EQ(paper_opp.Label(paper_.program),
                  scaled_opp.Label(scaled_.program));
    q.push_back(&scaled_analysis.sharing[static_cast<size_t>(oi)]);
  }

  auto rt = OpenStores(env_.get(), scaled_.program, dir_);
  rt.status().CheckOK();
  InitInputs(scaled_, *rt, /*seed=*/1234).CheckOK();
  // Reset outputs so plans never see stale results.
  for (int arr : scaled_.output_arrays) {
    ZeroArray(scaled_.program.array(arr),
              rt->stores[static_cast<size_t>(arr)].get())
        .CheckOK();
  }

  PlanCost scaled_cost = EvaluatePlanCost(scaled_.program, plan.schedule, q);
  ExecOptions eo;
  eo.memory_cap_bytes = scaled_cost.peak_memory_bytes;
  Executor ex(scaled_.program, rt->raw(), scaled_.kernels, eo);
  auto stats = ex.Run(plan.schedule, q);
  stats.status().CheckOK();

  // Exactness checks: measured I/O must equal the scaled prediction.
  RIOT_CHECK_EQ(stats->bytes_read, scaled_cost.read_bytes);
  RIOT_CHECK_EQ(stats->bytes_written, scaled_cost.write_bytes);
  RIOT_CHECK_EQ(stats->peak_required_bytes, scaled_cost.peak_memory_bytes);

  PlanRun run;
  run.label = label;
  run.predicted = plan.cost;
  run.measured = *stats;
  run.measured_model_s =
      static_cast<double>(stats->bytes_read) / (kPaperReadMBps * 1e6) +
      static_cast<double>(stats->bytes_written) / (kPaperWriteMBps * 1e6);
  run.scale_factor =
      static_cast<double>(plan.cost.TotalBytes()) /
      std::max<int64_t>(1, scaled_cost.TotalBytes());
  return run;
}

void Harness::PrintRuns(const std::vector<PlanRun>& runs) {
  std::printf(
      "%-28s %14s %14s %16s %14s %12s %12s\n", "plan",
      "pred I/O(s)", "pred mem(MB)", "meas I/O vol(MB)", "meas I/O(s)",
      "meas CPU(s)", "model I/O(s)");
  for (const auto& r : runs) {
    std::printf(
        "%-28s %14.1f %14.1f %16.1f %14.3f %12.3f %12.3f\n", r.label.c_str(),
        r.predicted.io_seconds, r.predicted.peak_memory_bytes / 1e6,
        (r.measured.bytes_read + r.measured.bytes_written) / 1e6,
        r.measured.io_seconds, r.measured.compute_seconds,
        r.measured_model_s);
  }
  std::printf(
      "(pred = optimizer at paper scale; meas = executed at 1/%lld scale on "
      "real files; model = measured volume at the paper's 96/60 MB/s disk)\n",
      ExecScale());
}

BenchJson::BenchJson(std::string bench_name, int argc, char** argv)
    : bench_(std::move(bench_name)) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      path_ = argv[i + 1];
      break;
    }
  }
}

void BenchJson::Add(const std::string& plan, const std::string& kind,
                    int threads, int pipeline_depth, const ExecStats& stats,
                    const std::string& policy, int64_t cap_bytes) {
  if (!active()) return;
  entries_.push_back(
      Entry{plan, kind, threads, pipeline_depth, policy, cap_bytes, stats});
}

namespace {
std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}
}  // namespace

void BenchJson::Flush() {
  if (!active()) return;
  std::ofstream f(path_);
  RIOT_CHECK(f.good()) << "cannot write " << path_;
  f << "{\n  \"bench\": \"" << JsonEscape(bench_) << "\",\n  \"runs\": [\n";
  for (size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    const ExecStats& s = e.stats;
    char buf[960];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"plan\": \"%s\", \"kind\": \"%s\", \"threads\": %d, "
        "\"pipeline_depth\": %d, \"policy\": \"%s\", \"cap_bytes\": %lld, "
        "\"wall_seconds\": %.6f, "
        "\"io_seconds\": %.6f, \"compute_seconds\": %.6f, "
        "\"overlap_seconds\": %.6f, \"compute_overlap_seconds\": %.6f, "
        "\"bytes_read\": %lld, \"bytes_written\": %lld, "
        "\"block_reads\": %lld, \"evictions\": %lld, "
        "\"dirty_writebacks\": %lld, \"policy_saved_reads\": %lld, "
        "\"parallel_groups\": %lld, \"max_ready_width\": %lld}%s\n",
        JsonEscape(e.plan).c_str(), JsonEscape(e.kind).c_str(), e.threads,
        e.depth, JsonEscape(e.policy).c_str(),
        static_cast<long long>(e.cap_bytes), s.wall_seconds, s.io_seconds,
        s.compute_seconds, s.overlap_seconds, s.compute_overlap_seconds,
        static_cast<long long>(s.bytes_read),
        static_cast<long long>(s.bytes_written),
        static_cast<long long>(s.block_reads),
        static_cast<long long>(s.pool.evictions),
        static_cast<long long>(s.pool.dirty_writebacks),
        static_cast<long long>(s.policy_saved_reads),
        static_cast<long long>(s.parallel_groups),
        static_cast<long long>(s.max_ready_width),
        i + 1 < entries_.size() ? "," : "");
    f << buf;
  }
  f << "  ]\n}\n";
  std::printf("[%s] wrote %zu runs to %s\n", bench_.c_str(), entries_.size(),
              path_.c_str());
}

void RunThreadSweep(const std::string& name,
                    const std::function<Workload(int64_t)>& factory,
                    BenchJson* json) {
  Workload w = factory(ExecScale());
  w.program.Validate().CheckOK();
  auto env = NewMemEnv();

  std::printf(
      "\n=== %s: exec_threads sweep (MemEnv, original schedule, "
      "1/%lld scale) ===\n",
      name.c_str(), static_cast<long long>(ExecScale()));
  std::printf("%8s %6s %9s %9s %9s %10s %12s %6s %7s\n", "threads", "depth",
              "wall(s)", "io(s)", "cpu(s)", "overlap(s)", "cpu_ovl(s)",
              "width", "groups");

  Runtime ref_rt;
  double serial_wall = 0.0, best_parallel_wall = 0.0;
  int run_idx = 0;
  for (int threads : {1, 2, 4}) {
    for (int depth : {0, 2}) {
      std::string dir = "/sweep" + std::to_string(run_idx++);
      auto rt = OpenStores(env.get(), w.program, dir);
      rt.status().CheckOK();
      InitInputs(w, *rt, /*seed=*/1234).CheckOK();
      ExecOptions eo;
      eo.exec_threads = threads;
      eo.pipeline_depth = depth;
      Executor ex(w.program, rt->raw(), w.kernels, eo);
      auto stats = ex.Run(w.program.original_schedule(), {});
      stats.status().CheckOK();
      std::printf("%8d %6d %9.3f %9.3f %9.3f %10.3f %12.3f %6lld %7lld\n",
                  threads, depth, stats->wall_seconds, stats->io_seconds,
                  stats->compute_seconds, stats->overlap_seconds,
                  stats->compute_overlap_seconds,
                  static_cast<long long>(stats->max_ready_width),
                  static_cast<long long>(stats->parallel_groups));
      if (json != nullptr) {
        json->Add("original", "sweep", threads, depth, *stats);
      }
      if (threads == 1 && depth == 0) {
        serial_wall = stats->wall_seconds;
        ref_rt = std::move(rt).ValueOrDie();
        continue;
      }
      if (threads == 4) {
        best_parallel_wall = best_parallel_wall == 0.0
                                 ? stats->wall_seconds
                                 : std::min(best_parallel_wall,
                                            stats->wall_seconds);
      }
      // Every configuration must reproduce the serial outputs exactly.
      for (int arr : w.output_arrays) {
        const ArrayInfo& info = w.program.array(arr);
        auto d = MaxAbsDifference(
            info, ref_rt.stores[static_cast<size_t>(arr)].get(),
            rt->stores[static_cast<size_t>(arr)].get());
        d.status().CheckOK();
        RIOT_CHECK(*d == 0.0)
            << name << " threads=" << threads << " depth=" << depth
            << " diverged on " << info.name;
      }
    }
  }
  if (serial_wall > 0.0 && best_parallel_wall > 0.0) {
    std::printf("speedup exec_threads=4 over serial: %.2fx "
                "(hardware: %u cores)\n",
                serial_wall / best_parallel_wall,
                std::thread::hardware_concurrency());
  }
}

void Harness::PrintPlanSpace(size_t max_rows) const {
  RIOT_CHECK(optimized_);
  std::printf("plan space (%zu plans): footprint(MB) vs I/O time(s)\n",
              result_.plans.size());
  size_t shown = 0;
  for (size_t i = 0; i < result_.plans.size() && shown < max_rows; ++i) {
    const Plan& p = result_.plans[i];
    std::printf("  plan %-4zu mem=%9.1f MB  io=%9.1f s  {%s}\n", i,
                p.cost.peak_memory_bytes / 1e6, p.cost.io_seconds,
                p.DescribeOpportunities(paper_.program,
                                        result_.analysis.sharing)
                    .c_str());
    ++shown;
  }
  if (shown < result_.plans.size()) {
    std::printf("  ... %zu more plans omitted\n",
                result_.plans.size() - shown);
  }
}

}  // namespace bench
}  // namespace riot
