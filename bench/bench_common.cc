#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "exec/verify.h"
#include "util/logging.h"

namespace riot {
namespace bench {

int64_t ExecScale(int64_t def) {
  const char* env = std::getenv("RIOT_SCALE");
  if (env != nullptr) {
    int64_t v = std::atoll(env);
    if (v > 0) return v;
  }
  return def;
}

Harness::Harness(std::string name, std::function<Workload(int64_t)> factory)
    : name_(std::move(name)), factory_(std::move(factory)),
      paper_(factory_(1)), scaled_(factory_(ExecScale())),
      env_(NewPosixEnv()) {
  dir_ = "bench_data_" + name_;
  std::filesystem::create_directories(dir_);
  paper_.program.Validate().CheckOK();
  scaled_.program.Validate().CheckOK();
}

Harness::~Harness() {
  std::error_code ec;
  std::filesystem::remove_all(dir_, ec);
}

const OptimizationResult& Harness::Optimize(const OptimizerOptions& opts) {
  if (!optimized_) {
    result_ = riot::Optimize(paper_.program, opts);
    optimized_ = true;
    std::printf(
        "[%s] optimizer: %zu sharing opportunities, %zu plans, "
        "%lld candidates tested, %lld pruned, %.2f s\n",
        name_.c_str(), result_.analysis.sharing.size(), result_.plans.size(),
        static_cast<long long>(result_.candidates_tested),
        static_cast<long long>(result_.candidates_pruned),
        result_.optimize_seconds);
  }
  return result_;
}

PlanRun Harness::RunPlan(int plan_index, const std::string& label) {
  RIOT_CHECK(optimized_);
  const Plan& plan = result_.plans[static_cast<size_t>(plan_index)];

  // Map the paper-scale plan onto the scaled program: block grids (and thus
  // statements, domains, accesses, schedules, opportunity order) are
  // identical across scales; only block byte sizes differ.
  AnalysisResult scaled_analysis = AnalyzeProgram(scaled_.program);
  RIOT_CHECK_EQ(scaled_analysis.sharing.size(),
                result_.analysis.sharing.size());
  std::vector<const CoAccess*> q;
  for (int oi : plan.opportunities) {
    const CoAccess& paper_opp =
        result_.analysis.sharing[static_cast<size_t>(oi)];
    const CoAccess& scaled_opp =
        scaled_analysis.sharing[static_cast<size_t>(oi)];
    RIOT_CHECK_EQ(paper_opp.Label(paper_.program),
                  scaled_opp.Label(scaled_.program));
    q.push_back(&scaled_analysis.sharing[static_cast<size_t>(oi)]);
  }

  auto rt = OpenStores(env_.get(), scaled_.program, dir_);
  rt.status().CheckOK();
  InitInputs(scaled_, *rt, /*seed=*/1234).CheckOK();
  // Reset outputs so plans never see stale results.
  for (int arr : scaled_.output_arrays) {
    ZeroArray(scaled_.program.array(arr),
              rt->stores[static_cast<size_t>(arr)].get())
        .CheckOK();
  }

  PlanCost scaled_cost = EvaluatePlanCost(scaled_.program, plan.schedule, q);
  ExecOptions eo;
  eo.memory_cap_bytes = scaled_cost.peak_memory_bytes;
  Executor ex(scaled_.program, rt->raw(), scaled_.kernels, eo);
  auto stats = ex.Run(plan.schedule, q);
  stats.status().CheckOK();

  // Exactness checks: measured I/O must equal the scaled prediction.
  RIOT_CHECK_EQ(stats->bytes_read, scaled_cost.read_bytes);
  RIOT_CHECK_EQ(stats->bytes_written, scaled_cost.write_bytes);
  RIOT_CHECK_EQ(stats->peak_required_bytes, scaled_cost.peak_memory_bytes);

  PlanRun run;
  run.label = label;
  run.predicted = plan.cost;
  run.measured = *stats;
  run.measured_model_s =
      static_cast<double>(stats->bytes_read) / (kPaperReadMBps * 1e6) +
      static_cast<double>(stats->bytes_written) / (kPaperWriteMBps * 1e6);
  run.scale_factor =
      static_cast<double>(plan.cost.TotalBytes()) /
      std::max<int64_t>(1, scaled_cost.TotalBytes());
  return run;
}

void Harness::PrintRuns(const std::vector<PlanRun>& runs) {
  std::printf(
      "%-28s %14s %14s %16s %14s %12s %12s\n", "plan",
      "pred I/O(s)", "pred mem(MB)", "meas I/O vol(MB)", "meas I/O(s)",
      "meas CPU(s)", "model I/O(s)");
  for (const auto& r : runs) {
    std::printf(
        "%-28s %14.1f %14.1f %16.1f %14.3f %12.3f %12.3f\n", r.label.c_str(),
        r.predicted.io_seconds, r.predicted.peak_memory_bytes / 1e6,
        (r.measured.bytes_read + r.measured.bytes_written) / 1e6,
        r.measured.io_seconds, r.measured.compute_seconds,
        r.measured_model_s);
  }
  std::printf(
      "(pred = optimizer at paper scale; meas = executed at 1/%lld scale on "
      "real files; model = measured volume at the paper's 96/60 MB/s disk)\n",
      ExecScale());
}

void Harness::PrintPlanSpace(size_t max_rows) const {
  RIOT_CHECK(optimized_);
  std::printf("plan space (%zu plans): footprint(MB) vs I/O time(s)\n",
              result_.plans.size());
  size_t shown = 0;
  for (size_t i = 0; i < result_.plans.size() && shown < max_rows; ++i) {
    const Plan& p = result_.plans[i];
    std::printf("  plan %-4zu mem=%9.1f MB  io=%9.1f s  {%s}\n", i,
                p.cost.peak_memory_bytes / 1e6, p.cost.io_seconds,
                p.DescribeOpportunities(paper_.program,
                                        result_.analysis.sharing)
                    .c_str());
    ++shown;
  }
  if (shown < result_.plans.size()) {
    std::printf("  ... %zu more plans omitted\n",
                result_.plans.size() - shown);
  }
}

}  // namespace bench
}  // namespace riot
