// E5 (DESIGN.md): two matrix multiplications, Config B (Figure 5). The
// paper's headline crossover: Plan 2 is optimal under Config A but
// suboptimal here, where Plan 3 wins.
#include "bench_2mm.h"

int main(int argc, char** argv) {
  riot::bench::Run(riot::TwoMatMulConfig::kConfigB,
                   "Figure 5 / Table 3: two matrix multiplications, Config B",
                   "Plan 3 (share A,B,D)", argc, argv);
  return 0;
}
