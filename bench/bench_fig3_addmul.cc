// E1/E2/E3 (DESIGN.md): matrix addition + multiplication (paper Section 6.1,
// Table 2, Figure 3). Reproduces:
//   (a) the plan space (memory footprint vs predicted I/O time, Figure 3a),
//       including the "club" variant of Plan 0 with 9000-row blocks,
//   (b) predicted vs actual I/O and CPU per plan (Figure 3b), and
//   (c) the Matlab/SciDB-style comparators (simulated; see EXPERIMENTS.md).
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "core/cost_model.h"

namespace riot {
namespace bench {
namespace {

void Run() {
  std::printf("=== Figure 3 / Table 2: matrix addition + multiplication ===\n");
  Harness h("fig3", MakeAddMul);
  const auto& r = h.Optimize();
  h.PrintPlanSpace();

  // Paper reference points (Section 6.1): original plan 2394 s, best plan
  // 836 s of I/O; total runtime 3180 s -> 1560 s (50.9% better).
  int best = r.best_index;
  std::printf("\npaper: plan 0 I/O = 2394 s, best plan I/O = 836 s\n");
  std::printf("ours:  plan 0 I/O = %.0f s, best plan I/O = %.0f s "
              "(plan %d: {%s})\n\n",
              r.plans[0].cost.io_seconds, r.plans[size_t(best)].cost.io_seconds,
              best,
              r.plans[size_t(best)]
                  .DescribeOpportunities(h.paper_workload().program,
                                         r.analysis.sharing)
                  .c_str());

  // Figure 3(b): predicted vs actual for every plan.
  std::vector<PlanRun> runs;
  for (size_t i = 0; i < r.plans.size(); ++i) {
    runs.push_back(h.RunPlan(static_cast<int>(i), "plan " + std::to_string(i)));
  }
  Harness::PrintRuns(runs);

  // Prediction accuracy at execution scale (paper: avg error 1.7%; ours is
  // exact in volume because the cost model sweeps block instances).
  double worst = 0.0;
  for (const auto& run : runs) {
    double pred_scaled = run.predicted.TotalBytes() / run.scale_factor;
    double meas = static_cast<double>(run.measured.bytes_read +
                                      run.measured.bytes_written);
    worst = std::max(worst, std::abs(pred_scaled - meas) / meas);
  }
  std::printf("\nmax |predicted - measured| I/O volume error: %.4f%% "
              "(paper: 1.7%% avg in seconds)\n",
              100.0 * worst);

  // The "club" plan: Plan 0 re-run with 9000-row blocks (8x12 grids).
  {
    Workload tall = MakeAddMulTall(1);
    PlanCost c = EvaluatePlanCost(tall.program,
                                  tall.program.original_schedule(), {});
    std::printf("\nclub plan (Plan 0, 9000-row blocks): mem=%.1f MB, "
                "I/O=%.1f s — more memory than the best plan yet far more "
                "I/O (paper Figure 3a club)\n",
                c.peak_memory_bytes / 1e6, c.io_seconds);
  }

  // Comparators (E3). SciDB-like: same blocked plan 0 but scalar,
  // per-element compute (no optimized kernel); measured for real.
  {
    std::printf("\n--- comparators (simulated; see EXPERIMENTS.md E3) ---\n");
    // Swap the multiply's kernel for the scalar engine, deriving the
    // accumulate condition from the statement's op spec (the lowered
    // statement's loop count is not this bench's business).
    Harness hs("fig3_scalar", [](int64_t s) {
      Workload w = MakeAddMul(s);
      const StatementOp op = *w.program.statement(1).op;
      w.kernels[1] = [op](const std::vector<int64_t>& iter,
                          const std::vector<DenseView*>& v) {
        const bool accumulate =
            op.reduction_iter >= 0 &&
            iter[static_cast<size_t>(op.reduction_iter)] > 0;
        BlockGemmScalar(*v[static_cast<size_t>(op.a)], op.trans_a,
                        *v[static_cast<size_t>(op.b)], op.trans_b,
                        v[static_cast<size_t>(op.out)], accumulate);
      };
      return w;
    });
    OptimizerOptions only_plan0;
    only_plan0.max_combination_size = 0;
    hs.Optimize(only_plan0);
    PlanRun p0 = h.RunPlan(0, "plan 0 (blocked kernels)");
    PlanRun sc = hs.RunPlan(0, "plan 0 (scalar engine)");
    int bi = r.best_index;
    PlanRun pb = h.RunPlan(bi, "best plan");
    double total_best = pb.measured.io_seconds + pb.measured.compute_seconds;
    double total_p0 = p0.measured.io_seconds + p0.measured.compute_seconds;
    double total_sc = sc.measured.io_seconds + sc.measured.compute_seconds;
    std::printf("Matlab-like (blocked, no I/O sharing): %.2fx best plan "
                "(paper: 2.65x)\n", total_p0 / total_best);
    std::printf("SciDB-like (scalar compute, no sharing): %.2fx best plan "
                "(paper: 33.08x)\n", total_sc / total_best);
  }
}

}  // namespace
}  // namespace bench
}  // namespace riot

int main() {
  riot::bench::Run();
  return 0;
}
