// E8 (DESIGN.md): sustained sequential read/write rate calibration (paper
// Section 6 setup: 96 MB/s read, 60 MB/s write on a WD Caviar Black 7200RPM
// drive under ext2 + O_DIRECT). The optimizer converts predicted I/O volume
// to time with these two rates; this binary measures the rates of the
// machine it runs on so results can be re-based.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <vector>

#include "storage/block_store.h"
#include "storage/env.h"

namespace riot {
namespace {

void Run() {
  std::printf("=== I/O rate calibration (paper: 96 MB/s read, 60 MB/s "
              "write) ===\n");
  auto env = NewPosixEnv();
  const std::string dir = "bench_data_iorates";
  std::filesystem::create_directories(dir);
  const int64_t block_bytes = 4 << 20;  // 4 MiB logical blocks
  const int64_t num_blocks = 64;        // 256 MiB total
  auto store =
      OpenDaf(env.get(), dir + "/cal.blk", block_bytes, num_blocks);
  store.status().CheckOK();

  std::vector<uint8_t> buf(static_cast<size_t>(block_bytes), 0xA5);
  auto t0 = std::chrono::steady_clock::now();
  for (int64_t b = 0; b < num_blocks; ++b) {
    (*store)->WriteBlock(b, buf.data()).CheckOK();
  }
  (*store)->Flush().CheckOK();
  double wsec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  t0 = std::chrono::steady_clock::now();
  for (int64_t b = 0; b < num_blocks; ++b) {
    (*store)->ReadBlock(b, buf.data()).CheckOK();
  }
  double rsec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const double mb = num_blocks * block_bytes / 1e6;
  std::printf("sequential write: %7.1f MB/s  (paper disk: 60 MB/s)\n",
              mb / wsec);
  std::printf("sequential read:  %7.1f MB/s  (paper disk: 96 MB/s)\n",
              mb / rsec);
  std::printf("note: this machine's page cache / storage class differs from "
              "the paper's 2011 desktop; the optimizer's *relative* plan "
              "ranking depends only on the read/write asymmetry and volume, "
              "which are preserved by the ThrottledEnv disk model.\n");
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

}  // namespace
}  // namespace riot

int main() {
  riot::Run();
  return 0;
}
