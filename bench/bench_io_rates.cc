// E8 (DESIGN.md): sustained sequential read/write rate calibration (paper
// Section 6 setup: 96 MB/s read, 60 MB/s write on a WD Caviar Black 7200RPM
// drive under ext2 + O_DIRECT). The optimizer converts predicted I/O volume
// to time with these two rates; this binary measures the rates of the
// machine it runs on so results can be re-based.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <vector>

#include "exec/executor.h"
#include "ops/runtime.h"
#include "ops/workload.h"
#include "storage/block_store.h"
#include "storage/env.h"

namespace riot {
namespace {

void Run() {
  std::printf("=== I/O rate calibration (paper: 96 MB/s read, 60 MB/s "
              "write) ===\n");
  auto env = NewPosixEnv();
  const std::string dir = "bench_data_iorates";
  std::filesystem::create_directories(dir);
  const int64_t block_bytes = 4 << 20;  // 4 MiB logical blocks
  const int64_t num_blocks = 64;        // 256 MiB total
  auto store =
      OpenDaf(env.get(), dir + "/cal.blk", block_bytes, num_blocks);
  store.status().CheckOK();

  std::vector<uint8_t> buf(static_cast<size_t>(block_bytes), 0xA5);
  auto t0 = std::chrono::steady_clock::now();
  for (int64_t b = 0; b < num_blocks; ++b) {
    (*store)->WriteBlock(b, buf.data()).CheckOK();
  }
  (*store)->Flush().CheckOK();
  double wsec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  t0 = std::chrono::steady_clock::now();
  for (int64_t b = 0; b < num_blocks; ++b) {
    (*store)->ReadBlock(b, buf.data()).CheckOK();
  }
  double rsec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const double mb = num_blocks * block_bytes / 1e6;
  std::printf("sequential write: %7.1f MB/s  (paper disk: 60 MB/s)\n",
              mb / wsec);
  std::printf("sequential read:  %7.1f MB/s  (paper disk: 96 MB/s)\n",
              mb / rsec);
  std::printf("note: this machine's page cache / storage class differs from "
              "the paper's 2011 desktop; the optimizer's *relative* plan "
              "ranking depends only on the read/write asymmetry and volume, "
              "which are preserved by the ThrottledEnv disk model.\n");
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

// Schedule-driven prefetch: the optimizer knows the plan's exact future
// block-access sequence, so the executor can overlap disk time with kernel
// time deterministically. Run the 2mm workload against a ThrottledEnv that
// physically blocks per request and sweep the pipeline depth.
void RunPipelineOverlap() {
  std::printf("\n=== compute/I-O overlap: 2mm on a physically throttled "
              "disk, pipeline depth sweep ===\n");
  Workload w = MakeTwoMatMul(TwoMatMulConfig::kConfigA, /*scale=*/1000);
  // The scaled blocks are tiny; give kernels paper-shaped compute weight.
  for (auto& kernel : w.kernels) {
    StatementKernel inner = kernel;
    kernel = [inner](const std::vector<int64_t>& iter,
                     const std::vector<DenseView*>& views) {
      inner(iter, views);
      auto t0 = std::chrono::steady_clock::now();
      volatile double sink = 0.0;
      while (std::chrono::duration<double>(
                 std::chrono::steady_clock::now() - t0)
                 .count() < 300e-6) {
        sink = sink + 1.0;
      }
    };
  }
  auto mem = NewMemEnv();
  auto disk = NewThrottledEnv(mem.get(), /*read=*/1e6, /*write=*/1e6,
                              /*per_request_ms=*/0.15, /*sleep_scale=*/1.0);
  std::printf("%6s %9s %9s %9s %9s %10s %8s\n", "depth", "wall(s)",
              "io(s)", "cpu(s)", "overlap", "hits", "wasted");
  double sync_wall = 0.0;
  for (int depth : {0, 1, 2, 4}) {
    auto rt = OpenStores(disk.get(), w.program,
                         "/pipe" + std::to_string(depth));
    rt.status().CheckOK();
    InitInputs(w, *rt, /*seed=*/42).CheckOK();
    ExecOptions opts;
    opts.pipeline_depth = depth;
    Executor ex(w.program, rt->raw(), w.kernels, opts);
    auto stats = ex.Run(w.program.original_schedule(), {});
    stats.status().CheckOK();
    if (depth == 0) sync_wall = stats->wall_seconds;
    std::printf("%6d %9.3f %9.3f %9.3f %9.3f %10lld %8lld   (%.2fx)\n",
                depth, stats->wall_seconds, stats->io_seconds,
                stats->compute_seconds, stats->overlap_seconds,
                static_cast<long long>(stats->prefetch_hits),
                static_cast<long long>(stats->prefetch_wasted),
                sync_wall / stats->wall_seconds);
  }
  std::printf("(depth 0 = synchronous engine: io and cpu strictly add; "
              "depth >= 1 prefetches the access script ahead of the "
              "kernels, so wall < io + cpu)\n");
}

}  // namespace
}  // namespace riot

int main() {
  riot::Run();
  riot::RunPipelineOverlap();
  return 0;
}
