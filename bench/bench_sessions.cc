// Multi-tenant throughput sweep: N concurrent sessions of the 2mm
// workload (shared inputs, private outputs) over ONE shared
// BufferPool/IoPool via the SessionRuntime, at several pool caps. Reports
// per-session and aggregate throughput so the perf trajectory of the
// server runtime — admission parking, cross-session dedup, fair-share
// I/O — lands in BENCH_sessions.json from this PR onward. At a fixed cap,
// aggregate throughput must not collapse as sessions are added (admission
// may serialize the excess, but never livelock).
//
// `--json <path>` writes:
//   {"bench":"sessions","runs":[{"sessions":N,"cap_bytes":C,
//     "wall_seconds":W,"aggregate_read_mb":R,"aggregate_written_mb":Wr,
//     "aggregate_mb_per_s":T,"sessions_parked":P,"policy_saved_reads":D,
//     "per_session":[{"wall_seconds":..,"block_reads":..,
//       "admission_wait_seconds":..,"peak_charged_bytes":..,
//       "budget_bytes":..}, ...]}, ...]}
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/cost_model.h"
#include "ops/session_runtime.h"
#include "util/logging.h"

namespace riot {
namespace bench {
namespace {

struct RunPoint {
  int sessions = 0;
  int64_t cap_bytes = 0;
  double wall_seconds = 0.0;
  double aggregate_read_mb = 0.0;
  double aggregate_written_mb = 0.0;
  double aggregate_mb_per_s = 0.0;
  int64_t sessions_parked = 0;
  int64_t policy_saved_reads = 0;
  std::vector<SessionStats> per_session;
};

double Since(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void WriteJson(const std::string& path, const std::vector<RunPoint>& runs) {
  std::ofstream out(path);
  out << "{\"bench\": \"sessions\", \"runs\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    const RunPoint& r = runs[i];
    out << "  {\"sessions\": " << r.sessions
        << ", \"cap_bytes\": " << r.cap_bytes
        << ", \"wall_seconds\": " << r.wall_seconds
        << ", \"aggregate_read_mb\": " << r.aggregate_read_mb
        << ", \"aggregate_written_mb\": " << r.aggregate_written_mb
        << ", \"aggregate_mb_per_s\": " << r.aggregate_mb_per_s
        << ", \"sessions_parked\": " << r.sessions_parked
        << ", \"policy_saved_reads\": " << r.policy_saved_reads
        << ", \"per_session\": [";
    for (size_t s = 0; s < r.per_session.size(); ++s) {
      const SessionStats& ss = r.per_session[s];
      out << (s == 0 ? "" : ", ") << "{\"wall_seconds\": "
          << ss.exec.wall_seconds
          << ", \"block_reads\": " << ss.exec.block_reads
          << ", \"admission_wait_seconds\": " << ss.admission_wait_seconds
          << ", \"peak_charged_bytes\": " << ss.peak_charged_bytes
          << ", \"budget_bytes\": " << ss.budget_bytes << "}";
    }
    out << "]}" << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  out << "]}\n";
  std::printf("wrote %s\n", path.c_str());
}

void Run(const std::string& json_path) {
  Workload w = MakeTwoMatMul(TwoMatMulConfig::kConfigA, ExecScale(200));
  w.program.Validate().CheckOK();
  auto env = NewMemEnv();

  const PlanCost plan_cost =
      EvaluatePlanCost(w.program, w.program.original_schedule(), {});
  const int64_t peak = plan_cost.peak_memory_bytes;

  // Shared inputs, initialized once.
  auto shared = OpenStores(env.get(), w.program, "/in");
  shared.status().CheckOK();
  Runtime shared_rt = std::move(shared).ValueOrDie();
  InitInputs(w, shared_rt, /*seed=*/99).CheckOK();

  std::printf(
      "\n=== concurrent-session sweep (2mm Config A, shared inputs, MemEnv, "
      "1/%lld scale; plan peak %.2f MB) ===\n",
      static_cast<long long>(ExecScale(200)), peak / 1e6);
  std::printf("%9s %10s %9s %12s %8s %12s %11s\n", "sessions", "cap(xpeak)",
              "wall(s)", "agg MB/s", "parked", "dedup_reads",
              "max_wait(s)");

  std::vector<RunPoint> runs;
  int dir_idx = 0;
  for (const int cap_mult : {4, 3, 2}) {
    for (const int nsessions : {1, 2, 4, 8}) {
      SessionRuntimeOptions ro;
      ro.pool_cap_bytes = cap_mult * peak;
      ro.io_threads = 2;
      SessionRuntime runtime(ro);

      struct Case {
        Runtime rt;
        Result<SessionStats> result = Status::Internal("unset");
      };
      std::vector<Case> cases(static_cast<size_t>(nsessions));
      for (Case& c : cases) {
        auto rt = OpenStores(env.get(), w.program,
                             "/s" + std::to_string(dir_idx++));
        rt.status().CheckOK();
        c.rt = std::move(rt).ValueOrDie();
      }
      Schedule sched = w.program.original_schedule();

      auto wall0 = std::chrono::steady_clock::now();
      std::vector<std::thread> threads;
      for (int i = 0; i < nsessions; ++i) {
        threads.emplace_back([&, i] {
          Case& c = cases[static_cast<size_t>(i)];
          std::vector<BlockStore*> stores = c.rt.raw();
          for (int arr : w.input_arrays) {
            stores[static_cast<size_t>(arr)] =
                shared_rt.stores[static_cast<size_t>(arr)].get();
          }
          SessionSpec spec;
          spec.program = &w.program;
          spec.schedule = &sched;
          spec.stores = std::move(stores);
          spec.kernels = &w.kernels;
          spec.exec.pipeline_depth = 1 + i % 2;
          c.result = runtime.Run(spec);
        });
      }
      for (auto& t : threads) t.join();

      RunPoint pt;
      pt.sessions = nsessions;
      pt.cap_bytes = ro.pool_cap_bytes;
      pt.wall_seconds = Since(wall0);
      double max_wait = 0.0;
      int64_t read_bytes = 0, written_bytes = 0;
      for (Case& c : cases) {
        c.result.status().CheckOK();
        read_bytes += c.result->exec.bytes_read;
        written_bytes += c.result->exec.bytes_written;
        max_wait = std::max(max_wait, c.result->admission_wait_seconds);
        RIOT_CHECK_LE(c.result->peak_charged_bytes,
                      c.result->budget_bytes);
        pt.per_session.push_back(*c.result);
      }
      const RuntimeStats rs = runtime.stats();
      pt.aggregate_read_mb = read_bytes / 1e6;
      pt.aggregate_written_mb = written_bytes / 1e6;
      pt.aggregate_mb_per_s =
          pt.wall_seconds > 0
              ? (read_bytes + written_bytes) / 1e6 / pt.wall_seconds
              : 0.0;
      pt.sessions_parked = rs.sessions_parked;
      pt.policy_saved_reads = rs.policy_saved_reads;
      runs.push_back(pt);

      std::printf("%9d %10d %9.3f %12.1f %8lld %12lld %11.3f\n", nsessions,
                  cap_mult, pt.wall_seconds, pt.aggregate_mb_per_s,
                  static_cast<long long>(pt.sessions_parked),
                  static_cast<long long>(pt.policy_saved_reads),
                  max_wait);

      // Retire this point's private stores from the shared pool before
      // they are destroyed (address reuse must never alias cache).
      for (Case& c : cases) {
        for (size_t a = 0; a < c.rt.stores.size(); ++a) {
          const int arr = static_cast<int>(a);
          bool is_input = false;
          for (int in : w.input_arrays) is_input |= (in == arr);
          if (!is_input) {
            runtime.ReleaseStore(c.rt.stores[a].get()).CheckOK();
          }
        }
      }
    }
  }
  std::printf(
      "(dedup_reads = reads served from another tenant's resident frames; "
      "parked = sessions that waited in the admission queue. Aggregate "
      "throughput at a fixed cap should grow — or at worst flatten — with "
      "session count, never collapse.)\n");

  if (!json_path.empty()) WriteJson(json_path, runs);
}

}  // namespace
}  // namespace bench
}  // namespace riot

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") json_path = argv[i + 1];
  }
  riot::bench::Run(json_path);
  return 0;
}
