// Ablation bench (DESIGN.md §5, paper Section 7 future work): joint
// block-size + I/O-sharing optimization on the addmul program. Quantifies
// the paper's Section 6.1 observation that spending extra memory on bigger
// blocks ("club" plan) is inferior to spending it on sharing, shows the
// advisor picking the globally best (blocking, plan) pair under a cap, and
// — new with the compute term — shows the cache-aware advisor flipping the
// block choice the I/O-only model makes, with host-measured kernel rates
// and end-to-end wall clocks for both picks.
#include <chrono>
#include <cstdio>

#include "analysis/loop_characteristics.h"
#include "bench_common.h"
#include "core/block_advisor.h"
#include "exec/executor.h"
#include "ops/runtime.h"
#include "ops/workload.h"
#include "storage/env.h"

namespace riot {
namespace {

void Run() {
  std::printf("=== Block-size co-optimization (paper Section 7) ===\n");
  std::vector<int64_t> rows = {3000, 4500, 6000, 9000, 12000};
  std::vector<BlockConfigCandidate> cands;
  for (int64_t br : rows) {
    cands.push_back({"blocks " + std::to_string(br) + "x4000",
                     MakeAddMulBlocked(br, /*scale=*/1).program});
  }
  OptimizerOptions opts;
  opts.memory_cap_bytes = int64_t{8000} * 1000 * 1000;  // the paper's 8 GB
  BlockAdvice advice = OptimizeWithBlockSizes(std::move(cands), opts);
  std::printf("%-20s %10s %12s %12s %8s\n", "configuration", "plans",
              "best I/O(s)", "best mem(MB)", "opt(s)");
  for (const auto& o : advice.outcomes) {
    if (o.feasible) {
      std::printf("%-20s %10zu %12.1f %12.1f %8.2f\n", o.label.c_str(),
                  o.num_plans, o.best_plan.cost.io_seconds,
                  o.best_plan.cost.peak_memory_bytes / 1e6,
                  o.optimize_seconds);
    } else {
      std::printf("%-20s %10zu %12s %12s %8.2f\n", o.label.c_str(),
                  o.num_plans, "infeasible", "-", o.optimize_seconds);
    }
  }
  if (advice.best_candidate >= 0) {
    const auto& b =
        advice.outcomes[static_cast<size_t>(advice.best_candidate)];
    std::printf("\njoint optimum: %s with {%s}\n", b.label.c_str(),
                "see plan list above");
    std::printf("paper comparison: the 'club' strategy (9000-row blocks, no "
                "sharing) costs 2390.8 s; cost-driven joint choice reaches "
                "%.1f s.\n", b.best_plan.cost.io_seconds);
  }
}

std::vector<BlockConfigCandidate> TwoConfigs() {
  std::vector<BlockConfigCandidate> cands;
  for (int64_t br : {int64_t{12000}, int64_t{6000}}) {
    cands.push_back({"blocks " + std::to_string(br) + "x4000",
                     MakeAddMulBlocked(br, /*scale=*/1).program});
  }
  return cands;
}

/// Largest per-instance working set over the program's statements (the
/// blocks one kernel invocation touches), in bytes.
int64_t MaxInstanceWorkingSet(const Program& prog) {
  int64_t ws = 0;
  for (const LoopCharacteristics& c : AnalyzeProgramLoops(prog)) {
    if (c.working_set_bytes > ws) ws = c.working_set_bytes;
  }
  return ws;
}

/// Executes a config's original schedule at execution scale against an
/// in-memory env (unthrottled, compute-bound) and returns the wall seconds.
double MeasureWall(int64_t block_rows) {
  Workload w = MakeAddMulBlocked(block_rows, bench::ExecScale());
  auto env = NewMemEnv();
  auto rt = OpenStores(env.get(), w.program, "/m");
  rt.status().CheckOK();
  InitInputs(w, *rt, /*seed=*/1234).CheckOK();
  ExecOptions eo;
  Executor ex(w.program, rt->raw(), w.kernels, eo);
  auto t0 = std::chrono::steady_clock::now();
  auto stats = ex.Run(w.program.original_schedule(), {});
  stats.status().CheckOK();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// ISSUE 6: the I/O-only model always prefers the bigger blocks here (each
// E-row instance re-reads all of D, so fewer row blocks means less re-read
// volume). The compute term prices what that ignores: the 12000-row gemm
// instance streams a ~1.02 GB C+D+E working set against ~0.59 GB for the
// 6000-row config. With host-calibrated kernel rates and a modeled fast
// tier between the two working sets, every flop of the big-block gemm pays
// the spill penalty — which dwarfs the saved D reads, and the advisor
// flips. (core_block_advisor_test asserts the same flip with a synthetic
// rate table; here the rates are measured on the build host.)
void RunCacheAware() {
  std::printf("\n=== Cache-aware compute term (I/O-only vs I/O+compute) "
              "===\n");
  KernelRateTable rates = CalibrateKernelRates(/*budget_ms=*/150);
  std::printf("host-calibrated rates (GFLOP/s): elementwise %.2f  gemm %.2f"
              "  inverse %.2f  reduction %.2f\n",
              rates.elementwise_gflops, rates.gemm_gflops,
              rates.inverse_gflops, rates.reduction_gflops);

  OptimizerOptions io_only;
  io_only.max_combination_size = 0;  // original plans: volumes are exact
  BlockAdvice a_io = OptimizeWithBlockSizes(TwoConfigs(), io_only);

  OptimizerOptions cache_aware = io_only;
  // At paper scale every block spills any real cache, so the boundary sits
  // between the two candidate working sets: this models a machine whose
  // fast tier (LLC slice, HBM partition) holds the small-block gemm
  // instance but not the big one.
  rates.cache_bytes = int64_t{700} * 1000 * 1000;
  rates.cache_penalty = 4.0;
  cache_aware.cost.compute = rates;
  BlockAdvice a_cc = OptimizeWithBlockSizes(TwoConfigs(), cache_aware);

  std::printf("%-20s %12s %10s %12s %12s\n", "configuration", "max ws(MB)",
              "I/O(s)", "compute(s)", "total(s)");
  for (size_t i = 0; i < a_cc.outcomes.size(); ++i) {
    const auto& o = a_cc.outcomes[i];
    if (!o.feasible) continue;
    std::printf("%-20s %12.0f %10.1f %12.1f %12.1f\n", o.label.c_str(),
                MaxInstanceWorkingSet(TwoConfigs()[i].program) / 1e6,
                o.best_plan.cost.io_seconds, o.best_plan.cost.compute_seconds,
                o.best_plan.cost.TotalSeconds());
  }
  const char* io_pick =
      a_io.best_candidate >= 0
          ? a_io.outcomes[static_cast<size_t>(a_io.best_candidate)]
                .label.c_str()
          : "-";
  const char* cc_pick =
      a_cc.best_candidate >= 0
          ? a_cc.outcomes[static_cast<size_t>(a_cc.best_candidate)]
                .label.c_str()
          : "-";
  std::printf("I/O-only pick: %s\ncache-aware pick: %s%s\n", io_pick, cc_pick,
              a_io.best_candidate != a_cc.best_candidate ? "  (flipped)"
                                                         : "");

  // Ground truth: run both configs end-to-end at 1/ExecScale() on an
  // in-memory env (compute-bound). Walls include kernel time plus per-block
  // scheduling/copy overhead; at small scales the two converge because the
  // packed GEMM blocks internally — the gap the advisor prices appears when
  // blocks exceed the host cache (raise with RIOT_SCALE=8).
  double wall_big = MeasureWall(12000);
  double wall_small = MeasureWall(6000);
  std::printf("measured end-to-end (in-memory, 1/%lld scale): "
              "12000-row %.3f s, 6000-row %.3f s\n",
              static_cast<long long>(bench::ExecScale()), wall_big,
              wall_small);
}

}  // namespace
}  // namespace riot

int main() {
  riot::Run();
  riot::RunCacheAware();
  return 0;
}
