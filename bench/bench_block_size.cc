// Ablation bench (DESIGN.md §5, paper Section 7 future work): joint
// block-size + I/O-sharing optimization on the addmul program. Quantifies
// the paper's Section 6.1 observation that spending extra memory on bigger
// blocks ("club" plan) is inferior to spending it on sharing, and shows the
// advisor picking the globally best (blocking, plan) pair under a cap.
#include <cstdio>

#include "core/block_advisor.h"
#include "ops/workload.h"

namespace riot {
namespace {

void Run() {
  std::printf("=== Block-size co-optimization (paper Section 7) ===\n");
  std::vector<int64_t> rows = {3000, 4500, 6000, 9000, 12000};
  std::vector<BlockConfigCandidate> cands;
  for (int64_t br : rows) {
    cands.push_back({"blocks " + std::to_string(br) + "x4000",
                     MakeAddMulBlocked(br, /*scale=*/1).program});
  }
  OptimizerOptions opts;
  opts.memory_cap_bytes = int64_t{8000} * 1000 * 1000;  // the paper's 8 GB
  BlockAdvice advice = OptimizeWithBlockSizes(std::move(cands), opts);
  std::printf("%-20s %10s %12s %12s %8s\n", "configuration", "plans",
              "best I/O(s)", "best mem(MB)", "opt(s)");
  for (const auto& o : advice.outcomes) {
    if (o.feasible) {
      std::printf("%-20s %10zu %12.1f %12.1f %8.2f\n", o.label.c_str(),
                  o.num_plans, o.best_plan.cost.io_seconds,
                  o.best_plan.cost.peak_memory_bytes / 1e6,
                  o.optimize_seconds);
    } else {
      std::printf("%-20s %10zu %12s %12s %8.2f\n", o.label.c_str(),
                  o.num_plans, "infeasible", "-", o.optimize_seconds);
    }
  }
  if (advice.best_candidate >= 0) {
    const auto& b =
        advice.outcomes[static_cast<size_t>(advice.best_candidate)];
    std::printf("\njoint optimum: %s with {%s}\n", b.label.c_str(),
                "see plan list above");
    std::printf("paper comparison: the 'club' strategy (9000-row blocks, no "
                "sharing) costs 2390.8 s; cost-driven joint choice reaches "
                "%.1f s.\n", b.best_plan.cost.io_seconds);
  }
}

}  // namespace
}  // namespace riot

int main() {
  riot::Run();
  return 0;
}
