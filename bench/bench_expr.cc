// Expression-built workloads through the standard harness: covariance
// (centered X'X with scratch temporaries) and ridge regression at two
// lambdas (hash-consed X'X / X'y shared across both solves). Reports the
// usual predicted-vs-measured plan table plus the expression-level facts:
// CSE hits at graph-construction time and the scratch-write elision the
// best plan achieves.
//
//   --json <path> dumps every run for scripts/bench_json.sh
//   (BENCH_expr.json).
#include <cstdio>

#include "bench_common.h"
#include "exec/verify.h"
#include "ir/expr.h"
#include "util/logging.h"

namespace riot {
namespace bench {
namespace {

void RunOne(const std::string& name,
            const std::function<Workload(int64_t)>& factory,
            BenchJson* json) {
  std::printf("=== %s (expression-built) ===\n", name.c_str());
  Harness h(name, factory);
  OptimizerOptions opts;
  opts.max_combination_size = 3;  // covariance/ridge plans are small sets
  const auto& r = h.Optimize(opts);

  int scratch = 0;
  for (const ArrayInfo& a : h.paper_workload().program.arrays()) {
    scratch += a.persistent ? 0 : 1;
  }
  std::printf("%zu statements, %d scratch temporaries\n",
              h.paper_workload().program.statements().size(), scratch);

  std::vector<PlanRun> runs;
  runs.push_back(h.RunPlan(0, "Plan 0 (original)"));
  if (r.best_index != 0) {
    runs.push_back(h.RunPlan(r.best_index, "best plan"));
  }
  for (const PlanRun& run : runs) {
    json->Add(name + "/" + run.label, "plan", /*threads=*/1,
              /*pipeline_depth=*/0, run.measured);
  }
  Harness::PrintRuns(runs);
  if (runs.size() > 1) {
    std::printf("scratch-write elision: best plan writes %.2f MB vs %.2f MB "
                "unoptimized (%.1f%% of temporary I/O gone)\n\n",
                runs[1].measured.bytes_written / 1e6,
                runs[0].measured.bytes_written / 1e6,
                100.0 * (1.0 - double(runs[1].measured.bytes_written) /
                                   double(runs[0].measured.bytes_written)));
  }
}

// Fusion sweep (ISSUE 10): the 7-op elementwise chain through both
// lowerings on a paper-rate throttled disk (real sleeps, so wall clock is
// I/O-bound the way the paper's disk is) under the same memory cap. The
// fused lowering must strictly reduce statements, scratch temporaries, and
// block reads, produce bit-identical output, and not be slower.
void RunFusionSweep(BenchJson* json) {
  const int64_t scale = ExecScale();
  auto base = NewMemEnv();
  auto disk = NewThrottledEnv(base.get(), kPaperReadMBps, kPaperWriteMBps,
                              /*per_request_ms=*/0.05, /*sleep_scale=*/1.0);

  std::printf(
      "\n=== elementwise chain: fused vs unfused lowering (throttled disk "
      "%g/%g MB/s, 1/%lld scale, same cap) ===\n",
      kPaperReadMBps, kPaperWriteMBps, static_cast<long long>(scale));
  std::printf("%10s %6s %8s %12s %10s %11s %9s\n", "lowering", "stmts",
              "scratch", "block_reads", "read(MB)", "write(MB)", "wall(s)");

  struct SweepRun {
    ExecStats stats;
    size_t statements;
    int scratch;
  };
  SweepRun runs[2];
  Runtime ref_rt;
  ArrayInfo ref_out;
  int ref_arr = -1;
  int64_t cap = 0;
  for (const bool fuse : {true, false}) {
    Workload w = MakeElementwiseChain(scale, fuse);
    w.program.Validate().CheckOK();
    int scratch = 0;
    int64_t block_bytes = 0;
    for (const ArrayInfo& a : w.program.arrays()) {
      scratch += a.persistent ? 0 : 1;
      block_bytes = std::max(block_bytes, a.BlockBytes());
    }
    // Both lowerings get the identical cap: enough for a handful of blocks,
    // far too small to hide the unfused chain's temporaries in the pool.
    if (cap == 0) cap = 8 * block_bytes;

    auto rt = OpenStores(disk.get(), w.program, fuse ? "/fused" : "/unfused");
    rt.status().CheckOK();
    InitInputs(w, *rt, /*seed=*/1234).CheckOK();
    ExecOptions eo;
    eo.memory_cap_bytes = cap;
    Executor ex(w.program, rt->raw(), w.kernels, eo);
    auto stats = ex.Run(w.program.original_schedule(), {});
    stats.status().CheckOK();

    const char* name = fuse ? "fused" : "unfused";
    std::printf("%10s %6zu %8d %12lld %10.2f %11.2f %9.3f\n", name,
                w.program.statements().size(), scratch,
                static_cast<long long>(stats->block_reads),
                stats->bytes_read / 1e6, stats->bytes_written / 1e6,
                stats->wall_seconds);
    if (json != nullptr) {
      json->Add(std::string("chain-") + name, "fusion", /*threads=*/1,
                /*pipeline_depth=*/0, *stats);
    }
    runs[fuse ? 0 : 1] = {*stats, w.program.statements().size(), scratch};
    if (fuse) {
      RIOT_CHECK_EQ(w.output_arrays.size(), 1u);
      ref_arr = w.output_arrays[0];
      ref_out = w.program.array(ref_arr);
      ref_rt = std::move(rt).ValueOrDie();
    } else {
      // Same graph, same inputs: the two lowerings must agree bit for bit
      // (the output's array id differs between lowerings; its shape cannot).
      auto d = MaxAbsDifference(
          ref_out, ref_rt.stores[static_cast<size_t>(ref_arr)].get(),
          rt->stores[static_cast<size_t>(w.output_arrays[0])].get());
      d.status().CheckOK();
      RIOT_CHECK(*d == 0.0) << "fused/unfused outputs diverged: " << *d;
    }
  }

  const SweepRun& f = runs[0];
  const SweepRun& u = runs[1];
  RIOT_CHECK_LT(f.statements, u.statements);
  RIOT_CHECK_LT(f.scratch, u.scratch);
  RIOT_CHECK_LT(f.stats.block_reads, u.stats.block_reads);
  RIOT_CHECK(f.stats.wall_seconds <= u.stats.wall_seconds)
      << "fused lowering slower than unfused on a disk-bound config";
  std::printf("fusion: %zu -> %zu statements, %d -> %d scratch, "
              "%lld -> %lld block reads, wall %.3fs -> %.3fs (%.2fx)\n\n",
              u.statements, f.statements, u.scratch, f.scratch,
              static_cast<long long>(u.stats.block_reads),
              static_cast<long long>(f.stats.block_reads),
              u.stats.wall_seconds, f.stats.wall_seconds,
              u.stats.wall_seconds / f.stats.wall_seconds);
}

void Run(int argc, char** argv) {
  BenchJson json("expr", argc, argv);

  // CSE evidence straight from the graph: ridge's factory spells X'X and
  // X'y out twice (once per lambda) and hash-consing dedups both.
  {
    Workload probe = MakeRidge(ExecScale());
    std::printf("ridge: %zu statements for two lambdas (10 without CSE)\n\n",
                probe.program.statements().size());
  }

  RunOne("covariance", [](int64_t s) { return MakeCovariance(s); }, &json);
  RunOne("ridge", MakeRidge, &json);

  RunFusionSweep(&json);
  RunThreadSweep("ridge", MakeRidge, &json);
  json.Flush();
}

}  // namespace
}  // namespace bench
}  // namespace riot

int main(int argc, char** argv) {
  riot::bench::Run(argc, argv);
  return 0;
}
