// Expression-built workloads through the standard harness: covariance
// (centered X'X with scratch temporaries) and ridge regression at two
// lambdas (hash-consed X'X / X'y shared across both solves). Reports the
// usual predicted-vs-measured plan table plus the expression-level facts:
// CSE hits at graph-construction time and the scratch-write elision the
// best plan achieves.
//
//   --json <path> dumps every run for scripts/bench_json.sh
//   (BENCH_expr.json).
#include <cstdio>

#include "bench_common.h"
#include "ir/expr.h"

namespace riot {
namespace bench {
namespace {

void RunOne(const std::string& name,
            const std::function<Workload(int64_t)>& factory,
            BenchJson* json) {
  std::printf("=== %s (expression-built) ===\n", name.c_str());
  Harness h(name, factory);
  OptimizerOptions opts;
  opts.max_combination_size = 3;  // covariance/ridge plans are small sets
  const auto& r = h.Optimize(opts);

  int scratch = 0;
  for (const ArrayInfo& a : h.paper_workload().program.arrays()) {
    scratch += a.persistent ? 0 : 1;
  }
  std::printf("%zu statements, %d scratch temporaries\n",
              h.paper_workload().program.statements().size(), scratch);

  std::vector<PlanRun> runs;
  runs.push_back(h.RunPlan(0, "Plan 0 (original)"));
  if (r.best_index != 0) {
    runs.push_back(h.RunPlan(r.best_index, "best plan"));
  }
  for (const PlanRun& run : runs) {
    json->Add(name + "/" + run.label, "plan", /*threads=*/1,
              /*pipeline_depth=*/0, run.measured);
  }
  Harness::PrintRuns(runs);
  if (runs.size() > 1) {
    std::printf("scratch-write elision: best plan writes %.2f MB vs %.2f MB "
                "unoptimized (%.1f%% of temporary I/O gone)\n\n",
                runs[1].measured.bytes_written / 1e6,
                runs[0].measured.bytes_written / 1e6,
                100.0 * (1.0 - double(runs[1].measured.bytes_written) /
                                   double(runs[0].measured.bytes_written)));
  }
}

void Run(int argc, char** argv) {
  BenchJson json("expr", argc, argv);

  // CSE evidence straight from the graph: ridge's factory spells X'X and
  // X'y out twice (once per lambda) and hash-consing dedups both.
  {
    Workload probe = MakeRidge(ExecScale());
    std::printf("ridge: %zu statements for two lambdas (10 without CSE)\n\n",
                probe.program.statements().size());
  }

  RunOne("covariance", MakeCovariance, &json);
  RunOne("ridge", MakeRidge, &json);

  RunThreadSweep("ridge", MakeRidge, &json);
  json.Flush();
}

}  // namespace
}  // namespace bench
}  // namespace riot

int main(int argc, char** argv) {
  riot::bench::Run(argc, argv);
  return 0;
}
