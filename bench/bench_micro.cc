// E10 (DESIGN.md): google-benchmark microbenchmarks for the substrates:
// exact simplex/ILP, polyhedral operations, analysis, schedule solving,
// buffer pool, dense kernels, and the two storage formats.
#include <benchmark/benchmark.h>

#include "analysis/coaccess.h"
#include "core/cost_model.h"
#include "core/schedule_solver.h"
#include "ilp/ilp.h"
#include "kernels/dense.h"
#include "ops/workload.h"
#include "polyhedral/farkas.h"
#include "polyhedral/polyhedron.h"
#include "storage/buffer_pool.h"

namespace riot {
namespace {

void BM_SimplexFeasibility(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<LpConstraint> cons;
  for (size_t i = 0; i < n; ++i) {
    RVector c(n);
    c[i] = Rational(1);
    cons.push_back({c, CmpOp::kGe, Rational(-(int64_t)i)});
    cons.push_back({c, CmpOp::kLe, Rational((int64_t)i + 5)});
  }
  RVector obj(n);
  obj[0] = Rational(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveLp(n, cons, obj));
  }
}
BENCHMARK(BM_SimplexFeasibility)->Arg(4)->Arg(16)->Arg(32);

void BM_IlpL1Sample(benchmark::State& state) {
  std::vector<LpConstraint> cons = {
      {RVector::FromInts({1, 1, 0}), CmpOp::kEq, Rational(3)},
      {RVector::FromInts({0, 1, 2}), CmpOp::kGe, Rational(1)},
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindIntegerPoint(3, cons));
  }
}
BENCHMARK(BM_IlpL1Sample);

void BM_PolyhedronEnumerate(benchmark::State& state) {
  Polyhedron p(3);
  for (size_t d = 0; d < 3; ++d) {
    p.AddVarBounds(d, 0, state.range(0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.EnumerateIntegerPoints());
  }
}
BENCHMARK(BM_PolyhedronEnumerate)->Arg(4)->Arg(8);

void BM_FarkasBox(benchmark::State& state) {
  Polyhedron p(2);
  p.AddVarBounds(0, 0, 11);
  p.AddVarBounds(1, 0, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FarkasNonNegativeForms(p));
  }
}
BENCHMARK(BM_FarkasBox);

void BM_AnalyzeAddMul(benchmark::State& state) {
  Workload w = MakeAddMul(40);
  for (auto _ : state) {
    benchmark::DoNotOptimize(AnalyzeProgram(w.program));
  }
}
BENCHMARK(BM_AnalyzeAddMul);

void BM_FindSchedulePaperSet(benchmark::State& state) {
  Workload w = MakeAddMul(40);
  AnalysisResult a = AnalyzeProgram(w.program);
  ScheduleSolver solver(w.program, a.dependences);
  std::vector<const CoAccess*> q;
  for (const auto& o : a.sharing) {
    std::string l = o.Label(w.program);
    if (l == "s1WC->s2RC" || l == "s2WE->s2RE" || l == "s2WE->s2WE") {
      q.push_back(&o);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.FindSchedule(q));
  }
}
BENCHMARK(BM_FindSchedulePaperSet);

void BM_CostEvaluation(benchmark::State& state) {
  Workload w = MakeAddMul(40);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EvaluatePlanCost(w.program, w.program.original_schedule(), {}));
  }
}
BENCHMARK(BM_CostEvaluation);

void BM_BufferPoolFetchHit(benchmark::State& state) {
  auto env = NewMemEnv();
  auto store = OpenDaf(env.get(), "/b", 4096, 16);
  BufferPool pool(1 << 20);
  auto f = pool.Fetch(0, 0, 4096, store->get(), false);
  pool.Unpin(*f);
  for (auto _ : state) {
    auto fr = pool.Fetch(0, 0, 4096, store->get(), false);
    pool.Unpin(*fr);
    benchmark::DoNotOptimize(fr);
  }
}
BENCHMARK(BM_BufferPoolFetchHit);

// --------------------------------------------------------------- kernels
// GEMM GFLOP/s sweep (items/s == FLOP/s: items = 2 n^3 per iteration):
// packed (BlockGemm) vs the pre-packing loop nest (BlockGemmNaive) vs the
// SciDB-like scalar engine, untransposed and both-transposed. The packed/
// naive ratio at 512+ is the ISSUE 6 acceptance number; on transposed
// operands the naive path degrades to strided access while packing absorbs
// the flags, so the gap widens by another order of magnitude.
enum class GemmImpl { kPacked, kNaive, kScalar };

void GemmBench(benchmark::State& state, GemmImpl impl, bool ta, bool tb) {
  const int64_t n = state.range(0);
  std::vector<double> a(static_cast<size_t>(n * n)),
      b(static_cast<size_t>(n * n)), c(static_cast<size_t>(n * n));
  DenseView va{a.data(), n, n}, vb{b.data(), n, n}, vc{c.data(), n, n};
  BlockFillRandom(&va, 1);
  BlockFillRandom(&vb, 2);
  for (auto _ : state) {
    switch (impl) {
      case GemmImpl::kPacked:
        BlockGemm(va, ta, vb, tb, &vc, false);
        break;
      case GemmImpl::kNaive:
        BlockGemmNaive(va, ta, vb, tb, &vc, false);
        break;
      case GemmImpl::kScalar:
        BlockGemmScalar(va, ta, vb, tb, &vc, false);
        break;
    }
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK_CAPTURE(GemmBench, packed_nn, GemmImpl::kPacked, false, false)
    ->Arg(64)->Arg(128)->Arg(256)->Arg(512)->Arg(768);
BENCHMARK_CAPTURE(GemmBench, packed_tt, GemmImpl::kPacked, true, true)
    ->Arg(256)->Arg(512)->Arg(768);
BENCHMARK_CAPTURE(GemmBench, naive_nn, GemmImpl::kNaive, false, false)
    ->Arg(64)->Arg(128)->Arg(256)->Arg(512)->Arg(768);
BENCHMARK_CAPTURE(GemmBench, naive_tt, GemmImpl::kNaive, true, true)
    ->Arg(256)->Arg(512)->Arg(768);
BENCHMARK_CAPTURE(GemmBench, scalar_nn, GemmImpl::kScalar, false, false)
    ->Arg(256)->Arg(512);

// Elementwise single-pass kernels: bytes/s (2 streams in, 1 out).
void BM_ElementwiseAdd(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<double> a(static_cast<size_t>(n * n)),
      b(static_cast<size_t>(n * n)), c(static_cast<size_t>(n * n));
  DenseView va{a.data(), n, n}, vb{b.data(), n, n}, vc{c.data(), n, n};
  BlockFillRandom(&va, 1);
  BlockFillRandom(&vb, 2);
  for (auto _ : state) {
    BlockAdd(va, vb, &vc);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetBytesProcessed(state.iterations() * 3 * n * n *
                          static_cast<int64_t>(sizeof(double)));
}
BENCHMARK(BM_ElementwiseAdd)->Arg(256)->Arg(1024)->Arg(2048);

void BM_ElementwiseScale(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<double> a(static_cast<size_t>(n * n)),
      c(static_cast<size_t>(n * n));
  DenseView va{a.data(), n, n}, vc{c.data(), n, n};
  BlockFillRandom(&va, 1);
  for (auto _ : state) {
    BlockScale(va, 1.0009765625, &vc);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetBytesProcessed(state.iterations() * 2 * n * n *
                          static_cast<int64_t>(sizeof(double)));
}
BENCHMARK(BM_ElementwiseScale)->Arg(256)->Arg(1024);

// Fixed-lane reduction: bytes/s of one input stream.
void BM_SumSquares(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<double> a(static_cast<size_t>(n * n));
  DenseView va{a.data(), n, n};
  BlockFillRandom(&va, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BlockSumSquares(va));
  }
  state.SetBytesProcessed(state.iterations() * n * n *
                          static_cast<int64_t>(sizeof(double)));
}
BENCHMARK(BM_SumSquares)->Arg(256)->Arg(1024)->Arg(2048);

void BM_StoreWrite(benchmark::State& state) {
  auto env = NewMemEnv();
  const bool lab = state.range(0) != 0;
  auto store = OpenBlockStore(env.get(), "/s",
                              lab ? StorageFormat::kLabTree
                                  : StorageFormat::kDaf,
                              64 << 10, 256);
  std::vector<uint8_t> buf(64 << 10, 0x5A);
  int64_t i = 0;
  for (auto _ : state) {
    (*store)->WriteBlock(i++ % 256, buf.data()).CheckOK();
  }
  state.SetBytesProcessed(state.iterations() * (64 << 10));
  state.SetLabel(lab ? "labtree" : "daf");
}
BENCHMARK(BM_StoreWrite)->Arg(0)->Arg(1);

void BM_StoreRead(benchmark::State& state) {
  auto env = NewMemEnv();
  const bool lab = state.range(0) != 0;
  auto store = OpenBlockStore(env.get(), "/s",
                              lab ? StorageFormat::kLabTree
                                  : StorageFormat::kDaf,
                              64 << 10, 256);
  std::vector<uint8_t> buf(64 << 10, 0x5A);
  for (int64_t b = 0; b < 256; ++b) {
    (*store)->WriteBlock(b, buf.data()).CheckOK();
  }
  int64_t i = 0;
  for (auto _ : state) {
    (*store)->ReadBlock(i++ % 256, buf.data()).CheckOK();
  }
  state.SetBytesProcessed(state.iterations() * (64 << 10));
  state.SetLabel(lab ? "labtree" : "daf");
}
BENCHMARK(BM_StoreRead)->Arg(0)->Arg(1);

}  // namespace
}  // namespace riot

BENCHMARK_MAIN();
