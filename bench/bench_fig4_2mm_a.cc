// E4 (DESIGN.md): two matrix multiplications, Config A (Figure 4).
#include "bench_2mm.h"

int main(int argc, char** argv) {
  riot::bench::Run(riot::TwoMatMulConfig::kConfigA,
                   "Figure 4 / Table 3: two matrix multiplications, Config A",
                   "Plan 2 (fuse, share A)", argc, argv);
  return 0;
}
