// E7 (DESIGN.md): optimization time and search-space pruning for the three
// evaluation programs (paper Section 6, "A Note on Optimization Time":
// 0.6 s / 2.1 s / 156.7 s in single-threaded Python; 94% of the linear
// regression search space pruned). Also ablates Apriori pruning against
// exhaustive power-set enumeration and shows that optimization time is
// independent of data scale.
#include <cstdio>

#include "core/optimizer.h"
#include "ops/workload.h"

namespace riot {
namespace {

void Report(const char* name, Workload w, double paper_seconds,
            bool ablate_apriori) {
  OptimizerOptions opts;
  OptimizationResult r = Optimize(w.program, opts);
  double total_space = 1.0;
  for (size_t i = 0; i < r.analysis.sharing.size(); ++i) total_space *= 2.0;
  double explored = static_cast<double>(r.candidates_tested);
  std::printf("%-10s opps=%2zu  tested=%6lld  pruned-frac=%5.1f%%  "
              "plans=%6zu  time=%7.2fs  (paper: %.1fs in Python)\n",
              name, r.analysis.sharing.size(),
              static_cast<long long>(r.candidates_tested),
              100.0 * (1.0 - explored / total_space), r.plans.size(),
              r.optimize_seconds, paper_seconds);
  if (ablate_apriori) {
    OptimizerOptions ex;
    ex.use_apriori = false;
    OptimizationResult re = Optimize(w.program, ex);
    std::printf("  ablation: exhaustive enumeration tested %lld candidates "
                "in %.2fs (Apriori: %lld in %.2fs, same %zu plans)\n",
                static_cast<long long>(re.candidates_tested),
                re.optimize_seconds,
                static_cast<long long>(r.candidates_tested),
                r.optimize_seconds, r.plans.size());
  }
}

void Run() {
  std::printf("=== Optimization time (paper Section 6 notes) ===\n");
  Report("addmul", MakeAddMul(1), 0.6, /*ablate_apriori=*/true);
  Report("twomm_a", MakeTwoMatMul(TwoMatMulConfig::kConfigA, 1), 2.1, true);
  Report("twomm_b", MakeTwoMatMul(TwoMatMulConfig::kConfigB, 1), 2.1, false);
  Report("linreg", MakeLinReg(1), 156.7, false);

  // Scale independence: "optimization time for the same program does not
  // change with the scale of the dataset."
  std::printf("\nscale independence (addmul):\n");
  for (int64_t scale : {1, 10, 40}) {
    OptimizationResult r = Optimize(MakeAddMul(scale).program);
    std::printf("  scale 1/%-3lld -> %.3f s, %zu plans\n",
                static_cast<long long>(scale), r.optimize_seconds,
                r.plans.size());
  }
}

}  // namespace
}  // namespace riot

int main() {
  riot::Run();
  return 0;
}
