// Shared benchmark harness: optimizes a workload at paper scale, executes
// selected plans at a reduced scale on real files, and prints paper-style
// tables (predicted vs measured, paper-reported numbers alongside).
#ifndef RIOTSHARE_BENCH_BENCH_COMMON_H_
#define RIOTSHARE_BENCH_BENCH_COMMON_H_

#include <functional>
#include <string>
#include <vector>

#include "core/optimizer.h"
#include "exec/executor.h"
#include "ops/runtime.h"
#include "ops/workload.h"
#include "storage/env.h"

namespace riot {
namespace bench {

/// Execution scale (paper block dims divided by this); RIOT_SCALE overrides.
int64_t ExecScale(int64_t def = 40);

/// Paper disk model: sustained 96 MB/s read, 60 MB/s write (Section 6).
constexpr double kPaperReadMBps = 96.0;
constexpr double kPaperWriteMBps = 60.0;

struct PlanRun {
  std::string label;
  PlanCost predicted;       // at paper scale
  ExecStats measured;       // at execution scale
  double measured_model_s;  // measured bytes converted at paper disk rates
  double scale_factor;      // paper bytes / scaled bytes (for comparison)
};

/// \brief Machine-readable benchmark trajectory: `--json <path>` on a bench
/// binary collects every run (plan-table runs, thread sweeps, and
/// replacement-policy sweeps) into one JSON file — {"bench": ..., "runs":
/// [{plan, kind, threads, pipeline_depth, policy, cap_bytes, wall_seconds,
/// io_seconds, compute_seconds, overlap_seconds, compute_overlap_seconds,
/// bytes_read, bytes_written, block_reads, evictions, dirty_writebacks,
/// policy_saved_reads, parallel_groups, max_ready_width}, ...]} — so
/// scripts/bench_json.sh can track wall/overlap/utilization and the
/// LRU-vs-OPT read gap across commits without parsing tables.
class BenchJson {
 public:
  /// Parses `--json <path>` out of argv; inactive (all calls no-ops) when
  /// the flag is absent.
  BenchJson(std::string bench_name, int argc, char** argv);

  /// `policy`/`cap_bytes` identify a replacement-policy sweep point; leave
  /// defaulted for runs where they do not apply.
  void Add(const std::string& plan, const std::string& kind, int threads,
           int pipeline_depth, const ExecStats& stats,
           const std::string& policy = "", int64_t cap_bytes = 0);
  /// Writes the file; prints the path. No-op when inactive.
  void Flush();

  bool active() const { return !path_.empty(); }

 private:
  struct Entry {
    std::string plan, kind;
    int threads, depth;
    std::string policy;
    int64_t cap_bytes;
    ExecStats stats;
  };
  std::string bench_;
  std::string path_;
  std::vector<Entry> entries_;
};

/// \brief Executes the workload's original schedule at {1, 2, 4} kernel
/// threads x {0, 2} pipeline depth against an in-memory Env (unthrottled,
/// compute-bound), verifies every configuration's outputs are bit-for-bit
/// equal to the serial run, prints a utilization table (wall, io, cpu,
/// overlap, DAG width), and records each point into `json` when provided.
void RunThreadSweep(const std::string& name,
                    const std::function<Workload(int64_t)>& factory,
                    BenchJson* json);

class Harness {
 public:
  /// `factory(scale)` builds the workload at the given scale.
  Harness(std::string name, std::function<Workload(int64_t)> factory);
  ~Harness();

  /// Runs the optimizer on the paper-scale program.
  const OptimizationResult& Optimize(const OptimizerOptions& opts = {});

  /// Executes the plan with the given index (into Optimize()'s plan list)
  /// at execution scale against real files; verifies outputs against the
  /// original plan's outputs.
  PlanRun RunPlan(int plan_index, const std::string& label);

  const OptimizationResult& result() const { return result_; }
  const Workload& paper_workload() const { return paper_; }
  Workload& scaled_workload() { return scaled_; }

  /// Formats a table of plan runs.
  static void PrintRuns(const std::vector<PlanRun>& runs);
  void PrintPlanSpace(size_t max_rows = 64) const;

 private:
  std::string name_;
  std::string dir_;
  std::function<Workload(int64_t)> factory_;
  Workload paper_;
  Workload scaled_;
  OptimizationResult result_;
  bool optimized_ = false;
  std::unique_ptr<Env> env_;
  // Reference outputs from the original plan at execution scale.
  bool have_reference_ = false;
};

}  // namespace bench
}  // namespace riot

#endif  // RIOTSHARE_BENCH_BENCH_COMMON_H_
