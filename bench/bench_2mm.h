#ifndef RIOTSHARE_BENCH_BENCH_2MM_H_
#define RIOTSHARE_BENCH_BENCH_2MM_H_
// Shared driver for the two-matrix-multiplication experiment (paper
// Section 6.2, Table 3, Figures 4 and 5). Config A and Config B binaries
// differ only in the configuration passed to Run().
//
// Paper Section 6.2 background (Config A:
// Table 3, Figure 4). The paper's selected plans:
//   Plan 0: no sharing.
//   Plan 1: accumulate C and E in memory (both statements' W->R/W->W).
//   Plan 2: Plan 1 + fuse the nests, sharing the read of A (optimal here).
//   Plan 3: share B and D re-reads plus A across statements.
#include <cstdio>
#include <set>
#include <string>

#include "bench_common.h"

namespace riot {
namespace bench {
namespace {

inline int FindPlan(const OptimizationResult& r, const Program& p,
             const std::vector<std::string>& labels) {
  for (size_t i = 0; i < r.plans.size(); ++i) {
    const Plan& plan = r.plans[i];
    if (plan.opportunities.size() != labels.size()) continue;
    std::set<std::string> have;
    for (int oi : plan.opportunities) {
      have.insert(r.analysis.sharing[static_cast<size_t>(oi)].Label(p));
    }
    bool all = true;
    for (const auto& l : labels) {
      if (!have.count(l)) all = false;
    }
    if (all) return static_cast<int>(i);
  }
  return -1;
}

inline void Run(TwoMatMulConfig config, const char* title, const char* optimal,
                int argc = 0, char** argv = nullptr) {
  std::printf("=== %s ===\n", title);
  const std::string bench_name =
      config == TwoMatMulConfig::kConfigA ? "fig4_2mm_a" : "fig5_2mm_b";
  BenchJson json(bench_name, argc, argv);
  Harness h(config == TwoMatMulConfig::kConfigA ? "fig4" : "fig5",
            [config](int64_t s) { return MakeTwoMatMul(config, s); });
  const auto& r = h.Optimize();
  const Program& p = h.paper_workload().program;
  h.PrintPlanSpace(12);
  std::printf("  (paper reports 40 plans under both configurations)\n\n");

  // The paper's four selected plans.
  struct Sel {
    const char* name;
    std::vector<std::string> labels;
  };
  std::vector<Sel> sels = {
      {"Plan 0 (no sharing)", {}},
      {"Plan 1 (accumulate C,E)",
       {"s1WC->s1RC", "s1WC->s1WC", "s2WE->s2RE", "s2WE->s2WE"}},
      {"Plan 2 (fuse, share A)",
       {"s1WC->s1RC", "s1WC->s1WC", "s2WE->s2RE", "s2WE->s2WE",
        "s1RA->s2RA"}},
      {"Plan 3 (share A,B,D)",
       {"s1RA->s2RA", "s1RB->s1RB", "s2RD->s2RD"}},
  };
  std::vector<PlanRun> runs;
  for (const auto& sel : sels) {
    int idx = FindPlan(r, p, sel.labels);
    if (idx < 0) {
      std::printf("  !! selected plan not found: %s\n", sel.name);
      continue;
    }
    runs.push_back(h.RunPlan(idx, sel.name));
    json.Add(sel.name, "plan", /*threads=*/1, /*pipeline_depth=*/0,
             runs.back().measured);
  }
  Harness::PrintRuns(runs);

  int best = r.best_index;
  std::printf("\noptimal plan: %d {%s}\n", best,
              r.plans[size_t(best)]
                  .DescribeOpportunities(p, r.analysis.sharing)
                  .c_str());
  std::printf("paper: %s is optimal under this configuration\n", optimal);

  // Parallel kernel dispatch: the compute-bound utilization story.
  RunThreadSweep(bench_name,
                 [config](int64_t s) { return MakeTwoMatMul(config, s); },
                 &json);
  json.Flush();
}

}  // namespace
}  // namespace bench
}  // namespace riot

#endif  // RIOTSHARE_BENCH_BENCH_2MM_H_
