// Open-loop serving sweep: YCSB-style Zipf traffic (whale-plus-mice mix)
// replayed in real time against the serving front end, at several offered
// loads and under each admission policy, over a throttled (sleeping)
// virtual disk so service times are physical. Reports per-request
// p50/p99/p999 latency, throughput vs offered load, and the admission-
// wait breakdown — the head-of-line story in numbers: under FIFO a parked
// whale stalls every mouse behind it, so mouse-dominated p99 balloons;
// small-job-first admission keeps the mice flowing and cuts p99 at the
// same offered load (the whale's extra wait is bounded by aging).
//
// A second sweep holds the offered load fixed and varies the buffer-pool
// cap crossed with the replacement policy: at sub-working-set caps the
// merged multi-plan ScheduleOpt clock saves block reads over LRU even
// with many sessions bound at once (the PR-8 merged-clock payoff, here
// under real thread interleavings rather than the lockstep oracle).
//
// `--json <path>` writes:
//   {"bench":"serve","runs":[{"policy":"fifo","replacement":"lru",
//     "offered_jobs_per_sec":40,"pool_cap_bytes":..,
//     "jobs":N,"completed":..,"failed":..,"elapsed_seconds":..,
//     "throughput_jobs_per_sec":..,"latency_p50_s":..,"latency_p99_s":..,
//     "latency_p999_s":..,"latency_mean_s":..,"latency_max_s":..,
//     "queue_wait_p99_s":..,"admission_wait_p99_s":..,
//     "admission_wait_mean_s":..,"exec_wall_p50_s":..,
//     "sessions_parked":..,"peak_reserved_bytes":..,
//     "block_reads":..,"policy_saved_reads":..,"evictions":..}, ...]}
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "ops/admission.h"
#include "serve/catalog.h"
#include "serve/server.h"
#include "serve/workload_gen.h"
#include "storage/replacement.h"
#include "util/logging.h"

namespace riot {
namespace bench {
namespace {

using serve::Catalog;
using serve::CatalogOptions;
using serve::JobKind;
using serve::JobSpec;
using serve::MetricsSnapshot;
using serve::OpenLoopGenerator;
using serve::Server;
using serve::ServerOptions;
using serve::TrafficOptions;

struct ServePoint {
  std::string policy;
  std::string replacement;
  double offered = 0;
  int jobs = 0;
  int64_t pool_cap_bytes = 0;
  MetricsSnapshot snap;
  int64_t sessions_parked = 0;
  int64_t peak_reserved_bytes = 0;
  int64_t block_reads = 0;
  int64_t policy_saved_reads = 0;
  int64_t evictions = 0;
};

ServePoint RunOne(const Catalog& catalog, AdmissionPolicyKind policy,
                  ReplacementKind replacement, int64_t pool_cap_bytes,
                  double offered_jobs_per_sec, int jobs) {
  ServerOptions sopts;
  sopts.worker_threads = 8;
  sopts.runtime.admission = policy;
  sopts.runtime.admission_aging_seconds = 0.5;  // bound whale starvation tightly
  sopts.runtime.replacement = replacement;
  sopts.runtime.pool_cap_bytes = pool_cap_bytes;
  Server server(&catalog, sopts);

  TrafficOptions traffic;
  traffic.offered_jobs_per_sec = offered_jobs_per_sec;
  traffic.num_datasets = catalog.num_datasets();
  traffic.zipf_theta = 0.99;
  traffic.write_fraction = 0.2;
  traffic.whale_fraction = 0.08;
  traffic.seed = 1234;  // identical arrival stream for every policy
  OpenLoopGenerator gen(traffic);

  // Open-loop replay: submit at the generated arrival instants no matter
  // how far behind the server falls.
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < jobs; ++i) {
    const JobSpec job = gen.Next();
    std::this_thread::sleep_until(
        t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                 std::chrono::duration<double>(job.arrival_seconds)));
    server.Submit(job);
  }
  server.Drain();

  ServePoint pt;
  pt.policy = AdmissionPolicyName(policy);
  pt.replacement = ReplacementKindName(replacement);
  pt.offered = offered_jobs_per_sec;
  pt.jobs = jobs;
  pt.pool_cap_bytes = pool_cap_bytes;
  pt.snap = server.Snapshot();
  const RuntimeStats rs = server.runtime().stats();
  pt.sessions_parked = rs.sessions_parked;
  pt.peak_reserved_bytes = rs.peak_reserved_bytes;
  pt.block_reads = rs.block_reads;
  pt.policy_saved_reads = rs.policy_saved_reads;
  pt.evictions = rs.pool.evictions;
  RIOT_CHECK_EQ(pt.snap.completed + pt.snap.failed,
                static_cast<int64_t>(jobs));
  return pt;
}

void WriteJson(const std::string& path, const std::vector<ServePoint>& runs) {
  std::ofstream out(path);
  out << "{\"bench\": \"serve\", \"runs\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    const ServePoint& r = runs[i];
    out << "  {\"policy\": \"" << r.policy << "\""
        << ", \"replacement\": \"" << r.replacement << "\""
        << ", \"offered_jobs_per_sec\": " << r.offered
        << ", \"pool_cap_bytes\": " << r.pool_cap_bytes
        << ", \"jobs\": " << r.jobs
        << ", \"completed\": " << r.snap.completed
        << ", \"failed\": " << r.snap.failed
        << ", \"elapsed_seconds\": " << r.snap.elapsed_seconds
        << ", \"throughput_jobs_per_sec\": "
        << r.snap.throughput_jobs_per_sec
        << ", \"latency_p50_s\": " << r.snap.latency.P50()
        << ", \"latency_p99_s\": " << r.snap.latency.P99()
        << ", \"latency_p999_s\": " << r.snap.latency.P999()
        << ", \"latency_mean_s\": " << r.snap.latency.mean_seconds()
        << ", \"latency_max_s\": " << r.snap.latency.max_seconds()
        << ", \"mouse_latency_p50_s\": " << r.snap.latency_mice.P50()
        << ", \"mouse_latency_p99_s\": " << r.snap.latency_mice.P99()
        << ", \"mouse_latency_p999_s\": " << r.snap.latency_mice.P999()
        << ", \"whale_latency_p50_s\": " << r.snap.latency_whales.P50()
        << ", \"whale_latency_p99_s\": " << r.snap.latency_whales.P99()
        << ", \"queue_wait_p99_s\": " << r.snap.queue_wait.P99()
        << ", \"admission_wait_p99_s\": " << r.snap.admission_wait.P99()
        << ", \"admission_wait_mean_s\": "
        << r.snap.admission_wait.mean_seconds()
        << ", \"exec_wall_p50_s\": " << r.snap.exec_wall.P50()
        << ", \"sessions_parked\": " << r.sessions_parked
        << ", \"peak_reserved_bytes\": " << r.peak_reserved_bytes
        << ", \"block_reads\": " << r.block_reads
        << ", \"policy_saved_reads\": " << r.policy_saved_reads
        << ", \"evictions\": " << r.evictions << "}"
        << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  out << "]}\n";
  std::printf("wrote %s\n", path.c_str());
}

void Run(const std::string& json_path) {
  // Sleeping virtual disk: reads/writes cost real wall time, so a whale's
  // service time physically dwarfs a mouse's and head-of-line blocking is
  // measured, not simulated.
  auto base = NewMemEnv();
  auto env = NewThrottledEnv(base.get(), /*read_mb_per_s=*/30.0,
                             /*write_mb_per_s=*/20.0,
                             /*per_request_ms=*/0.2, /*sleep_scale=*/1.0);

  CatalogOptions copts;
  copts.num_datasets = 6;
  copts.num_slots = 8;
  copts.mouse_grid = 2;
  copts.mouse_block = 32;
  copts.whale_grid = 3;
  copts.whale_block = 64;
  auto catalog = Catalog::Create(env.get(), copts);
  catalog.status().CheckOK();

  std::printf(
      "\n=== open-loop serving sweep (Zipf 0.99 over %d datasets, 20%% "
      "writes, 8%% whales, sleeping disk 30/20 MB/s; whale footprint "
      "%.1f KB, mouse read %.1f KB) ===\n",
      copts.num_datasets,
      (*catalog)->footprint_bytes(JobKind::kWhale) / 1e3,
      (*catalog)->footprint_bytes(JobKind::kRead) / 1e3);
  std::printf("%15s %9s %6s %9s %9s %9s %10s %10s %9s %8s\n", "policy",
              "offered/s", "jobs", "tput/s", "p50(ms)", "p99(ms)",
              "mouse99(ms)", "whale99(ms)", "adm99(ms)", "parked");

  std::vector<ServePoint> runs;
  const int kJobs = 400;
  // One whale plus a handful of mice coexist; a second whale parks.
  const int64_t whale_fp = (*catalog)->footprint_bytes(JobKind::kWhale);
  const int64_t tight_cap = whale_fp + whale_fp / 2;
  for (const double offered : {10.0, 20.0, 30.0}) {
    for (const auto policy : {AdmissionPolicyKind::kFifo,
                              AdmissionPolicyKind::kSmallestFootprint,
                              AdmissionPolicyKind::kShortestWork}) {
      ServePoint pt = RunOne(**catalog, policy, ReplacementKind::kLru,
                             tight_cap, offered, kJobs);
      std::printf(
          "%15s %9.0f %6d %9.1f %9.2f %9.2f %10.2f %10.2f %9.2f %8lld\n",
          pt.policy.c_str(), pt.offered, pt.jobs,
          pt.snap.throughput_jobs_per_sec, pt.snap.latency.P50() * 1e3,
          pt.snap.latency.P99() * 1e3, pt.snap.latency_mice.P99() * 1e3,
          pt.snap.latency_whales.P99() * 1e3,
          pt.snap.admission_wait.P99() * 1e3,
          static_cast<long long>(pt.sessions_parked));
      runs.push_back(std::move(pt));
    }
  }
  std::printf(
      "(same seed per offered load: every policy serves the identical "
      "arrival stream. p99 under FIFO absorbs the whales' head-of-line "
      "blocking; small-job-first/shortest-work admission lets mice "
      "overtake a parked whale, cutting tail latency at the same offered "
      "load.)\n");

  // Cap x replacement sweep at a fixed offered load: how much disk traffic
  // each eviction policy saves as the pool shrinks below the hot working
  // set. FIFO admission and one seed per cap, so within a cap every
  // replacement policy faces the identical arrival stream.
  std::printf(
      "\n=== buffer-pool cap x replacement sweep (FIFO admission, "
      "20 jobs/s) ===\n");
  std::printf("%12s %12s %6s %12s %12s %10s %9s %9s\n", "cap(KB)",
              "replacement", "jobs", "block_reads", "saved_reads",
              "evictions", "tput/s", "p99(ms)");
  for (const int64_t cap : {tight_cap, 2 * tight_cap, 4 * tight_cap}) {
    for (const auto replacement :
         {ReplacementKind::kLru, ReplacementKind::kClock,
          ReplacementKind::kScheduleOpt}) {
      ServePoint pt = RunOne(**catalog, AdmissionPolicyKind::kFifo,
                             replacement, cap, /*offered=*/20.0, kJobs);
      std::printf(
          "%12.1f %12s %6d %12lld %12lld %10lld %9.1f %9.2f\n", cap / 1e3,
          pt.replacement.c_str(), pt.jobs,
          static_cast<long long>(pt.block_reads),
          static_cast<long long>(pt.policy_saved_reads),
          static_cast<long long>(pt.evictions),
          pt.snap.throughput_jobs_per_sec, pt.snap.latency.P99() * 1e3);
      runs.push_back(std::move(pt));
    }
  }
  std::printf(
      "(the merged multi-plan clock keeps ScheduleOpt's future-use "
      "ordering live while several sessions are bound, so its saved reads "
      "over LRU survive multi-tenancy at sub-working-set caps.)\n");

  if (!json_path.empty()) WriteJson(json_path, runs);
}

}  // namespace
}  // namespace bench
}  // namespace riot

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") json_path = argv[i + 1];
  }
  riot::bench::Run(json_path);
  return 0;
}
