// Open-loop serving sweep: YCSB-style Zipf traffic (whale-plus-mice mix)
// replayed in real time against the serving front end, at several offered
// loads and under each admission policy, over a throttled (sleeping)
// virtual disk so service times are physical. Reports per-request
// p50/p99/p999 latency, throughput vs offered load, and the admission-
// wait breakdown — the head-of-line story in numbers: under FIFO a parked
// whale stalls every mouse behind it, so mouse-dominated p99 balloons;
// small-job-first admission keeps the mice flowing and cuts p99 at the
// same offered load (the whale's extra wait is bounded by aging).
//
// `--json <path>` writes:
//   {"bench":"serve","runs":[{"policy":"fifo","offered_jobs_per_sec":40,
//     "jobs":N,"completed":..,"failed":..,"elapsed_seconds":..,
//     "throughput_jobs_per_sec":..,"latency_p50_s":..,"latency_p99_s":..,
//     "latency_p999_s":..,"latency_mean_s":..,"latency_max_s":..,
//     "queue_wait_p99_s":..,"admission_wait_p99_s":..,
//     "admission_wait_mean_s":..,"exec_wall_p50_s":..,
//     "sessions_parked":..,"peak_reserved_bytes":..}, ...]}
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "ops/admission.h"
#include "serve/catalog.h"
#include "serve/server.h"
#include "serve/workload_gen.h"
#include "util/logging.h"

namespace riot {
namespace bench {
namespace {

using serve::Catalog;
using serve::CatalogOptions;
using serve::JobKind;
using serve::JobSpec;
using serve::MetricsSnapshot;
using serve::OpenLoopGenerator;
using serve::Server;
using serve::ServerOptions;
using serve::TrafficOptions;

struct ServePoint {
  std::string policy;
  double offered = 0;
  int jobs = 0;
  MetricsSnapshot snap;
  int64_t sessions_parked = 0;
  int64_t peak_reserved_bytes = 0;
};

ServePoint RunOne(const Catalog& catalog, AdmissionPolicyKind policy,
                  double offered_jobs_per_sec, int jobs) {
  ServerOptions sopts;
  sopts.worker_threads = 8;
  sopts.runtime.admission = policy;
  sopts.runtime.admission_aging_seconds = 0.5;  // bound whale starvation tightly
  // One whale plus a handful of mice coexist; a second whale parks.
  const int64_t whale_fp = catalog.footprint_bytes(JobKind::kWhale);
  sopts.runtime.pool_cap_bytes = whale_fp + whale_fp / 2;
  Server server(&catalog, sopts);

  TrafficOptions traffic;
  traffic.offered_jobs_per_sec = offered_jobs_per_sec;
  traffic.num_datasets = catalog.num_datasets();
  traffic.zipf_theta = 0.99;
  traffic.write_fraction = 0.2;
  traffic.whale_fraction = 0.08;
  traffic.seed = 1234;  // identical arrival stream for every policy
  OpenLoopGenerator gen(traffic);

  // Open-loop replay: submit at the generated arrival instants no matter
  // how far behind the server falls.
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < jobs; ++i) {
    const JobSpec job = gen.Next();
    std::this_thread::sleep_until(
        t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                 std::chrono::duration<double>(job.arrival_seconds)));
    server.Submit(job);
  }
  server.Drain();

  ServePoint pt;
  pt.policy = AdmissionPolicyName(policy);
  pt.offered = offered_jobs_per_sec;
  pt.jobs = jobs;
  pt.snap = server.Snapshot();
  const RuntimeStats rs = server.runtime().stats();
  pt.sessions_parked = rs.sessions_parked;
  pt.peak_reserved_bytes = rs.peak_reserved_bytes;
  RIOT_CHECK_EQ(pt.snap.completed + pt.snap.failed,
                static_cast<int64_t>(jobs));
  return pt;
}

void WriteJson(const std::string& path, const std::vector<ServePoint>& runs) {
  std::ofstream out(path);
  out << "{\"bench\": \"serve\", \"runs\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    const ServePoint& r = runs[i];
    out << "  {\"policy\": \"" << r.policy << "\""
        << ", \"offered_jobs_per_sec\": " << r.offered
        << ", \"jobs\": " << r.jobs
        << ", \"completed\": " << r.snap.completed
        << ", \"failed\": " << r.snap.failed
        << ", \"elapsed_seconds\": " << r.snap.elapsed_seconds
        << ", \"throughput_jobs_per_sec\": "
        << r.snap.throughput_jobs_per_sec
        << ", \"latency_p50_s\": " << r.snap.latency.P50()
        << ", \"latency_p99_s\": " << r.snap.latency.P99()
        << ", \"latency_p999_s\": " << r.snap.latency.P999()
        << ", \"latency_mean_s\": " << r.snap.latency.mean_seconds()
        << ", \"latency_max_s\": " << r.snap.latency.max_seconds()
        << ", \"mouse_latency_p50_s\": " << r.snap.latency_mice.P50()
        << ", \"mouse_latency_p99_s\": " << r.snap.latency_mice.P99()
        << ", \"mouse_latency_p999_s\": " << r.snap.latency_mice.P999()
        << ", \"whale_latency_p50_s\": " << r.snap.latency_whales.P50()
        << ", \"whale_latency_p99_s\": " << r.snap.latency_whales.P99()
        << ", \"queue_wait_p99_s\": " << r.snap.queue_wait.P99()
        << ", \"admission_wait_p99_s\": " << r.snap.admission_wait.P99()
        << ", \"admission_wait_mean_s\": "
        << r.snap.admission_wait.mean_seconds()
        << ", \"exec_wall_p50_s\": " << r.snap.exec_wall.P50()
        << ", \"sessions_parked\": " << r.sessions_parked
        << ", \"peak_reserved_bytes\": " << r.peak_reserved_bytes << "}"
        << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  out << "]}\n";
  std::printf("wrote %s\n", path.c_str());
}

void Run(const std::string& json_path) {
  // Sleeping virtual disk: reads/writes cost real wall time, so a whale's
  // service time physically dwarfs a mouse's and head-of-line blocking is
  // measured, not simulated.
  auto base = NewMemEnv();
  auto env = NewThrottledEnv(base.get(), /*read_mb_per_s=*/30.0,
                             /*write_mb_per_s=*/20.0,
                             /*per_request_ms=*/0.2, /*sleep_scale=*/1.0);

  CatalogOptions copts;
  copts.num_datasets = 6;
  copts.num_slots = 8;
  copts.mouse_grid = 2;
  copts.mouse_block = 32;
  copts.whale_grid = 3;
  copts.whale_block = 64;
  auto catalog = Catalog::Create(env.get(), copts);
  catalog.status().CheckOK();

  std::printf(
      "\n=== open-loop serving sweep (Zipf 0.99 over %d datasets, 20%% "
      "writes, 8%% whales, sleeping disk 30/20 MB/s; whale footprint "
      "%.1f KB, mouse read %.1f KB) ===\n",
      copts.num_datasets,
      (*catalog)->footprint_bytes(JobKind::kWhale) / 1e3,
      (*catalog)->footprint_bytes(JobKind::kRead) / 1e3);
  std::printf("%15s %9s %6s %9s %9s %9s %10s %10s %9s %8s\n", "policy",
              "offered/s", "jobs", "tput/s", "p50(ms)", "p99(ms)",
              "mouse99(ms)", "whale99(ms)", "adm99(ms)", "parked");

  std::vector<ServePoint> runs;
  const int kJobs = 400;
  for (const double offered : {10.0, 20.0, 30.0}) {
    for (const auto policy : {AdmissionPolicyKind::kFifo,
                              AdmissionPolicyKind::kSmallestFootprint,
                              AdmissionPolicyKind::kShortestWork}) {
      ServePoint pt = RunOne(**catalog, policy, offered, kJobs);
      std::printf(
          "%15s %9.0f %6d %9.1f %9.2f %9.2f %10.2f %10.2f %9.2f %8lld\n",
          pt.policy.c_str(), pt.offered, pt.jobs,
          pt.snap.throughput_jobs_per_sec, pt.snap.latency.P50() * 1e3,
          pt.snap.latency.P99() * 1e3, pt.snap.latency_mice.P99() * 1e3,
          pt.snap.latency_whales.P99() * 1e3,
          pt.snap.admission_wait.P99() * 1e3,
          static_cast<long long>(pt.sessions_parked));
      runs.push_back(std::move(pt));
    }
  }
  std::printf(
      "(same seed per offered load: every policy serves the identical "
      "arrival stream. p99 under FIFO absorbs the whales' head-of-line "
      "blocking; small-job-first/shortest-work admission lets mice "
      "overtake a parked whale, cutting tail latency at the same offered "
      "load.)\n");

  if (!json_path.empty()) WriteJson(json_path, runs);
}

}  // namespace
}  // namespace bench
}  // namespace riot

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") json_path = argv[i + 1];
  }
  riot::bench::Run(json_path);
  return 0;
}
